//! The single entry point: `run(&spec) -> ScenarioReport`.

use std::path::Path;
use std::sync::Arc;

use qic_analytic::cost::{ComponentCounts, CostModel, NetworkShape};
use qic_analytic::figures::{pair_budget, PairMetric};
use qic_analytic::plan::ChannelModel;
use qic_analytic::strategy::PurifyPlacement;
use qic_fault::FaultPlan;
use qic_modular::{ModularFabric, ModularSpec};
use qic_net::config::NetConfig;
use qic_net::report::NetReport;
use qic_net::sim::{BatchDriver, NetworkSim};
use qic_net::topology::{Coord, Topology, TopologyKind};
use qic_probe::RecordingProbe;
use qic_sweep::{
    Campaign, CampaignProgress, CampaignReport, CancelToken, CheckpointConfig, CheckpointError,
    Executor, JsonlProgress, Metrics, NoProgress, ProgressSink, Shard,
};
use qic_workload::Program;

use crate::layout::Layout;
use crate::machine::Machine;
use crate::scenario::spec::{
    ExperimentSpec, MachineSpec, ObserveSpec, ScenarioAxis, ScenarioError, ScenarioSpec,
    WorkloadSpec,
};
use crate::scheduler::ProgramDriver;

/// The result of running a scenario: the spec that produced it plus the
/// full campaign report.
///
/// The report is byte-identical however the run was scheduled (worker
/// count, thread interleaving); see `qic-sweep`'s determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// The spec that was run (after validation).
    pub spec: ScenarioSpec,
    /// Per-point results, CSV/JSON emitters included.
    pub report: CampaignReport,
}

impl ScenarioReport {
    /// The campaign report as deterministic CSV.
    pub fn to_csv(&self) -> String {
        self.report.to_csv()
    }

    /// The campaign report as deterministic JSON.
    pub fn to_json(&self) -> String {
        self.report.to_json()
    }
}

/// How far a budgeted, checkpointed scenario run got — either the
/// finished report or the checkpoint manifest's progress.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioProgress {
    /// Every point completed; the full report.
    Complete(Box<ScenarioReport>),
    /// The point budget ran out; the manifest holds `done` of `total`
    /// points and a later run resumes from it.
    Partial {
        /// Points completed so far (across all runs).
        done: usize,
        /// Points in the scenario's sweep.
        total: usize,
    },
}

/// Which slice of the campaign this invocation executes.
#[derive(Clone, Copy)]
enum ExecMode {
    /// The whole campaign (resuming from a checkpoint manifest when the
    /// spec asks for one).
    Full,
    /// One contiguous shard of the point space, buffered.
    Shard(Shard),
    /// Checkpointed with a point budget: stop after this many newly
    /// completed points (`None` = run to completion).
    Budgeted(Option<usize>),
}

/// An execution's result: a report, or checkpointed partial progress.
enum ExecOutcome {
    Report(CampaignReport),
    Partial { done: usize, total: usize },
}

/// Runs a scenario: validates the spec, builds the campaign its axes
/// describe, evaluates every point (in parallel, deterministically) and
/// returns the report.
///
/// This is the one entry point every experiment goes through — the
/// figure presets in [`crate::scenario::ScenarioRegistry`], the
/// examples, and ad-hoc specs loaded from JSON. Specs with a
/// [`crate::scenario::CheckpointSpec`] resume from their manifest and
/// run to completion.
///
/// # Errors
///
/// [`ScenarioError`] if the spec fails validation or — for
/// checkpointed specs — the manifest cannot be read, written, or does
/// not belong to this spec. Running a validated, uncheckpointed spec
/// cannot fail.
pub fn run(spec: &ScenarioSpec) -> Result<ScenarioReport, ScenarioError> {
    spec.validate()?;
    match dispatch(spec, ExecMode::Full)? {
        ExecOutcome::Report(report) => Ok(ScenarioReport {
            spec: spec.clone(),
            report,
        }),
        ExecOutcome::Partial { .. } => unreachable!("a full run always completes"),
    }
}

/// Runs one contiguous shard of a scenario's campaign: the points of
/// `shard` evaluate exactly as they would in [`run`] (per-point seeds
/// derive from absolute indices), and the report contains only those
/// points. Merging every shard's report with
/// [`qic_sweep::CampaignReport::merge`] reproduces the serial report
/// byte for byte — the cross-process fan-out primitive behind
/// `scenario_run --shard i/K`.
///
/// # Errors
///
/// [`ScenarioError`] if the spec fails validation, or if it has a
/// checkpoint block (a shard neither reads nor writes the manifest, so
/// combining the two would silently disable resume).
pub fn run_shard(spec: &ScenarioSpec, shard: Shard) -> Result<ScenarioReport, ScenarioError> {
    spec.validate()?;
    if spec.checkpoint.is_some() {
        return Err(ScenarioError::Spec {
            scenario: spec.name.clone(),
            problem: "sharded runs do not checkpoint; drop the checkpoint block \
                      (shards are restarted whole) or run unsharded"
                .into(),
        });
    }
    match dispatch(spec, ExecMode::Shard(shard))? {
        ExecOutcome::Report(report) => Ok(ScenarioReport {
            spec: spec.clone(),
            report,
        }),
        ExecOutcome::Partial { .. } => unreachable!("shard runs always complete"),
    }
}

/// Runs a checkpointed scenario with a point budget: at most `budget`
/// not-yet-completed points are evaluated before the manifest is
/// committed and progress reported (`None` = run to completion). Call
/// repeatedly — or from separate processes, one after another — until
/// [`ScenarioProgress::Complete`]; the final report is byte-identical
/// to an uninterrupted run's.
///
/// # Errors
///
/// [`ScenarioError`] if the spec fails validation, has no checkpoint
/// block (there is nowhere to record progress), or the manifest cannot
/// be read, written, or does not belong to this spec.
pub fn run_budgeted(
    spec: &ScenarioSpec,
    budget: Option<usize>,
) -> Result<ScenarioProgress, ScenarioError> {
    spec.validate()?;
    if spec.checkpoint.is_none() {
        return Err(ScenarioError::Spec {
            scenario: spec.name.clone(),
            problem: "budgeted runs need a checkpoint block to record progress in".into(),
        });
    }
    match dispatch(spec, ExecMode::Budgeted(budget))? {
        ExecOutcome::Report(report) => Ok(ScenarioProgress::Complete(Box::new(ScenarioReport {
            spec: spec.clone(),
            report,
        }))),
        ExecOutcome::Partial { done, total } => Ok(ScenarioProgress::Partial { done, total }),
    }
}

/// Runs a scenario on a shared [`Executor`] instead of a transient
/// per-call thread pool.
///
/// The report is **byte-identical** to [`run`]'s: both paths evaluate
/// the same per-point seeds and fold replicates through the same
/// buffered aggregation. What changes is scheduling only — the
/// executor's workers serve this campaign alongside any others
/// submitted concurrently (fair round-robin at point granularity), so a
/// long-lived service can run many scenarios without spawning a pool
/// per request. The spec's `workers` hint is ignored on this path: the
/// pool was sized when the executor was built (explicit count, else the
/// `QIC_WORKERS` environment variable, else the machine's parallelism —
/// see [`Executor::new`]).
///
/// # Errors
///
/// [`ScenarioError`] if the spec fails validation, or if it has a
/// checkpoint block — executor runs neither read nor write manifests
/// (resume bookkeeping belongs to the dedicated [`run_budgeted`] path),
/// so combining the two would silently disable resume.
pub fn run_on(spec: &ScenarioSpec, exec: &Executor) -> Result<ScenarioReport, ScenarioError> {
    let report = run_on_cancellable(spec, exec, Arc::new(NoProgress), &CancelToken::new())?;
    Ok(report.expect("an uncancelled run completes"))
}

/// [`run_on`] with live progress and cooperative cancellation — the
/// service-layer entry point (`qic-serve` streams the sink's events to
/// job watchers and trips the token on cancel/shutdown).
///
/// `progress` hears one start/finish pair per *point* (not per
/// replicate). Cancelling stops further points from being claimed;
/// points already evaluating finish, and the call returns `Ok(None)`
/// instead of a report. A token that is never cancelled makes this
/// exactly [`run_on`].
///
/// # Errors
///
/// As [`run_on`]: validation failures and checkpointed specs.
pub fn run_on_cancellable(
    spec: &ScenarioSpec,
    exec: &Executor,
    progress: Arc<dyn ProgressSink + Send + Sync>,
    cancel: &CancelToken,
) -> Result<Option<ScenarioReport>, ScenarioError> {
    spec.validate()?;
    if spec.checkpoint.is_some() {
        return Err(ScenarioError::Spec {
            scenario: spec.name.clone(),
            problem: "executor runs do not checkpoint; drop the checkpoint block \
                      or use run_budgeted for resumable execution"
                .into(),
        });
    }
    let campaign = campaign(spec);
    let report = match &spec.experiment {
        ExperimentSpec::Machine { machine, workload } => {
            let me = Arc::new(MachineEval::new(spec, machine, workload));
            campaign.run_on_observed(exec, move |p, ctx| me.eval(p, ctx), progress, cancel)
        }
        ExperimentSpec::Channel {
            placement,
            hops,
            metric,
        } => {
            let ce = Arc::new(ChannelEval::new(spec, *placement, *hops, *metric));
            campaign.run_on_observed(exec, move |p, ctx| ce.eval(p, ctx), progress, cancel)
        }
    };
    Ok(report.map(|report| ScenarioReport {
        spec: spec.clone(),
        report,
    }))
}

fn dispatch(spec: &ScenarioSpec, mode: ExecMode) -> Result<ExecOutcome, ScenarioError> {
    match &spec.experiment {
        ExperimentSpec::Machine { machine, workload } => run_machine(spec, machine, workload, mode),
        ExperimentSpec::Channel {
            placement,
            hops,
            metric,
        } => run_channel(spec, *placement, *hops, *metric, mode),
    }
}

fn campaign(spec: &ScenarioSpec) -> Campaign {
    Campaign::new(spec.name.clone(), spec.param_space())
        .seed(spec.seed)
        .replicates(spec.replicates)
        .workers(spec.workers)
}

/// Maps path-hostile characters of a scenario name to `_`, the shared
/// file-stem convention for trace exports and checkpoint manifests.
fn sanitize_stem(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Runs `eval` under the chosen execution mode: plain, sharded, or
/// checkpoint/resume (streaming aggregation, atomic manifest commits).
fn execute<F>(spec: &ScenarioSpec, mode: ExecMode, eval: F) -> Result<ExecOutcome, ScenarioError>
where
    F: Fn(&qic_sweep::SweepPoint<'_>, qic_sweep::RunCtx) -> Metrics + Sync,
{
    let campaign = campaign(spec);
    match (mode, &spec.checkpoint) {
        (ExecMode::Shard(shard), _) => Ok(ExecOutcome::Report(campaign.run_shard(shard, eval))),
        (ExecMode::Full, None) => Ok(ExecOutcome::Report(campaign.run(eval))),
        (ExecMode::Full, Some(ckpt)) => {
            let config = checkpoint_config(spec, &ckpt.dir, ckpt.every)?;
            let report = campaign.run_resumable(&config, eval)?;
            Ok(ExecOutcome::Report(report))
        }
        (ExecMode::Budgeted(budget), Some(ckpt)) => {
            let config = checkpoint_config(spec, &ckpt.dir, ckpt.every)?;
            match campaign.run_resumable_budgeted(&config, budget, eval)? {
                CampaignProgress::Complete(report) => Ok(ExecOutcome::Report(*report)),
                CampaignProgress::Partial { done, total } => {
                    Ok(ExecOutcome::Partial { done, total })
                }
            }
        }
        (ExecMode::Budgeted(_), None) => {
            unreachable!("run_budgeted rejects specs without a checkpoint block")
        }
    }
}

/// Builds the manifest location `{dir}/{stem}.ckpt.json`, creating the
/// directory if needed.
fn checkpoint_config(
    spec: &ScenarioSpec,
    dir: &str,
    every: u32,
) -> Result<CheckpointConfig, ScenarioError> {
    std::fs::create_dir_all(dir).map_err(|e| {
        ScenarioError::Checkpoint(CheckpointError::Io {
            path: dir.to_string(),
            op: "create dir",
            message: e.to_string(),
        })
    })?;
    let path = Path::new(dir).join(format!("{}.ckpt.json", sanitize_stem(&spec.name)));
    Ok(CheckpointConfig::new(path).every(every as usize))
}

/// Writes one evaluation's trace exports under the observe directory.
/// The file stem is `{name}_p{index:04}_r{replicate}`, with any
/// path-hostile characters of the scenario name mapped to `_`.
fn write_traces(
    obs: &ObserveSpec,
    name: &str,
    point: usize,
    replicate: u32,
    probe: &RecordingProbe,
) {
    let stem = sanitize_stem(name);
    let base = Path::new(&obs.dir).join(format!("{stem}_p{point:04}_r{replicate}"));
    if obs.events {
        let path = base.with_extension("events.jsonl");
        std::fs::write(&path, probe.events_jsonl())
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    }
    if obs.chrome_trace {
        let path = base.with_extension("trace.json");
        std::fs::write(&path, probe.chrome_trace())
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    }
}

/// The owned evaluator behind every machine experiment: everything one
/// point evaluation needs, cloned out of the spec so the same struct
/// serves both execution paths — borrowed by the transient scoped pool
/// (`run` / `run_shard` / `run_budgeted`) and `Arc`'d into the shared
/// [`Executor`] (`run_on`), whose tasks must be `Send + 'static`.
struct MachineEval {
    name: String,
    axes: Vec<ScenarioAxis>,
    machine: MachineSpec,
    workload: WorkloadSpec,
    /// Unless a workload axis varies it per point, the program is
    /// generated once up front (QFT-256 is tens of thousands of
    /// instructions).
    base_program: Option<Program>,
    observe: Option<ObserveSpec>,
}

impl MachineEval {
    /// Clones the evaluation state out of a validated spec and creates
    /// the observe directory if trace export is requested.
    fn new(spec: &ScenarioSpec, machine: &MachineSpec, workload: &WorkloadSpec) -> MachineEval {
        let workload_varies = spec
            .axes
            .iter()
            .any(|a| matches!(a, ScenarioAxis::Workloads { .. }));
        let base_program = if workload_varies {
            None
        } else {
            workload.program()
        };
        if let Some(obs) = &spec.observe {
            std::fs::create_dir_all(&obs.dir)
                .unwrap_or_else(|e| panic!("creating observe directory {}: {e}", obs.dir));
        }
        MachineEval {
            name: spec.name.clone(),
            axes: spec.axes.clone(),
            machine: machine.clone(),
            workload: workload.clone(),
            base_program,
            observe: spec.observe.clone(),
        }
    }

    /// Evaluates one `(point, replicate)`: applies every axis to the
    /// base machine/workload, seeds the net RNG from the derived seed,
    /// and runs the simulator (degraded fabric when a fault plan is in
    /// play, probed when trace export is on).
    fn eval(&self, point: &qic_sweep::SweepPoint<'_>, ctx: qic_sweep::RunCtx) -> Metrics {
        let observe = self.observe.as_ref();
        let mut net = self.machine.net_config();
        let mut layout = self.machine.layout;
        let mut wl = self.workload.clone();
        let mut fault = self.machine.fault.clone();
        let mut modular = self.machine.modular.clone();
        for (a, axis) in self.axes.iter().enumerate() {
            axis.apply_machine(
                point.coord(a),
                &mut net,
                &mut layout,
                &mut wl,
                &mut fault,
                &mut modular,
            );
        }
        // Per-point derived seeds follow the engine's replication
        // contract; the net RNG only draws classical correction bits,
        // which never move simulated time, so they cannot shift a
        // figure's numbers. The fault plan keeps its *own* declared
        // seed: which components die is part of the scenario, not of
        // the replication noise.
        net.seed = ctx.seed;
        if let Some(m) = modular {
            return self.eval_modular(&m, net, layout, &wl, fault, (point.index(), ctx.replicate));
        }
        // Scenarios with a fault plan run over the compiled degraded
        // fabric (even at rate zero, so a fault sweep reports the same
        // metric columns at every point); plain scenarios take the
        // untouched healthy path.
        let degraded = fault.map(|plan| plan.compile(net.fabric()));
        match &wl {
            WorkloadSpec::Batch { comms } => {
                let batch = comms
                    .iter()
                    .map(|&((sx, sy), (dx, dy))| (Coord::new(sx, sy), Coord::new(dx, dy)))
                    .collect();
                let mut driver = BatchDriver::new(batch);
                match observe {
                    Some(obs) => {
                        let probe = RecordingProbe::with_bins(obs.bins);
                        let (report, probe) = match degraded {
                            Some(topo) => NetworkSim::with_topology_probe(net, topo, probe)
                                .run_traced(&mut driver),
                            None => NetworkSim::with_probe(net, probe).run_traced(&mut driver),
                        };
                        write_traces(obs, &self.name, point.index(), ctx.replicate, &probe);
                        report
                    }
                    None => match degraded {
                        Some(topo) => NetworkSim::with_topology(net, topo).run(&mut driver),
                        None => NetworkSim::new(net).run(&mut driver),
                    },
                }
                .metrics()
            }
            program_workload => {
                let per_point;
                let program = match &self.base_program {
                    Some(shared) => shared,
                    None => {
                        per_point = program_workload
                            .program()
                            .expect("non-batch workloads generate programs");
                        &per_point
                    }
                };
                match (degraded, observe) {
                    (Some(topo), observe) => {
                        // The scheduler drives the degraded fabric
                        // directly; dropped communications still retire
                        // their instructions, so degraded programs
                        // always drain (delivered/dropped counts tell
                        // the resilience story).
                        let mut driver = ProgramDriver::new(&net, layout, program)
                            .expect("validated scenario points fit the grid");
                        let report = match observe {
                            Some(obs) => {
                                let probe = RecordingProbe::with_bins(obs.bins);
                                let (report, probe) =
                                    NetworkSim::with_topology_probe(net, topo, probe)
                                        .run_traced(&mut driver);
                                write_traces(obs, &self.name, point.index(), ctx.replicate, &probe);
                                report
                            }
                            None => NetworkSim::with_topology(net, topo).run(&mut driver),
                        };
                        driver.assert_finished();
                        report.metrics()
                    }
                    (None, Some(obs)) => {
                        // Same construction Machine::run performs
                        // (ProgramDriver's default gate time is the
                        // machine builder's), with the probe attached.
                        let mut driver = ProgramDriver::new(&net, layout, program)
                            .expect("validated scenario points fit the grid");
                        let probe = RecordingProbe::with_bins(obs.bins);
                        let (report, probe) =
                            NetworkSim::with_probe(net, probe).run_traced(&mut driver);
                        driver.assert_finished();
                        write_traces(obs, &self.name, point.index(), ctx.replicate, &probe);
                        report.metrics()
                    }
                    (None, None) => {
                        let mut b = Machine::builder();
                        b.net_config(net).layout(layout);
                        let machine = b.build().expect("validated scenario points build");
                        machine.run(program).net.metrics()
                    }
                }
            }
        }
    }

    /// Evaluates one point of a modular machine: the composed fabric is
    /// handed to the simulator directly, the driver addresses the tiled
    /// grid, and — when the spec asks — cost/fidelity columns ride
    /// along next to the measured metrics. `trace_tag` is the
    /// `(point index, replicate)` pair that names any exported traces.
    fn eval_modular(
        &self,
        m: &ModularSpec,
        mut net: NetConfig,
        layout: Layout,
        wl: &WorkloadSpec,
        fault: Option<FaultPlan>,
        trace_tag: (usize, u32),
    ) -> Metrics {
        let fabric = ModularFabric::new(net.fabric(), m);
        if m.modules > 1 {
            // The driver addresses the composed grid: modules tile side
            // by side, so placement snakes across the full width. A
            // single module leaves the config untouched — the flat
            // path's placement (gray-coded on hypercubes) included —
            // which is what keeps the degenerate case byte-identical.
            net.mesh_width *= m.modules as u16;
            net.topology = TopologyKind::Mesh;
        }
        let mut metrics = match fault {
            Some(plan) => self
                .drive(
                    plan.compile(fabric.clone()),
                    net.clone(),
                    layout,
                    wl,
                    trace_tag,
                )
                .metrics(),
            None => self
                .drive(fabric.clone(), net.clone(), layout, wl, trace_tag)
                .metrics(),
        };
        if m.report_cost {
            let t = u64::from(net.teleporters_per_node);
            let g = u64::from(net.generators_per_edge);
            let p = u64::from(net.purifiers_per_site);
            let nodes = fabric.nodes() as u64;
            let intra = fabric.intra_links() as u64;
            let inter = fabric.inter_links() as u64;
            let counts = ComponentCounts {
                nodes,
                intra_links: intra,
                inter_links: inter,
                switch_ports: fabric.switch_ports() as u64,
                teleporters: nodes * t + fabric.uplink_slots(),
                generators: (intra + inter) * g,
                purifiers: nodes * p,
            };
            let shape = NetworkShape {
                avg_distance: fabric.avg_distance(),
                diameter: fabric.diameter(),
                bisection_width: fabric.bisection_width(),
                hop_ns: net.times.teleport(net.hop_cells).as_nanos(),
                inter_penalty_ns: m.inter.latency_ns * u64::from(fabric.tier_hops()),
            };
            let est = CostModel::ion_trap()
                .with_inter_link_cost(m.inter_unit_cost)
                .estimate(&counts, &shape);
            metrics = metrics
                .with("cost_dollars", est.dollars)
                .with("cost_area_cells", est.area_cells)
                .with("predicted_latency_ns", est.predicted_latency_ns)
                .with("fidelity", fabric.fidelity_estimate());
        }
        metrics
    }

    /// Runs one workload over a caller-supplied topology — the shared
    /// tail of the modular paths (healthy and degraded compose to
    /// different concrete types). `trace_tag` is the
    /// `(point index, replicate)` pair that names any exported traces.
    fn drive<T: Topology>(
        &self,
        topo: T,
        net: NetConfig,
        layout: Layout,
        wl: &WorkloadSpec,
        trace_tag: (usize, u32),
    ) -> NetReport {
        let observe = self.observe.as_ref();
        match wl {
            WorkloadSpec::Batch { comms } => {
                let batch = comms
                    .iter()
                    .map(|&((sx, sy), (dx, dy))| (Coord::new(sx, sy), Coord::new(dx, dy)))
                    .collect();
                let mut driver = BatchDriver::new(batch);
                match observe {
                    Some(obs) => {
                        let probe = RecordingProbe::with_bins(obs.bins);
                        let (report, probe) = NetworkSim::with_topology_probe(net, topo, probe)
                            .run_traced(&mut driver);
                        write_traces(obs, &self.name, trace_tag.0, trace_tag.1, &probe);
                        report
                    }
                    None => NetworkSim::with_topology(net, topo).run(&mut driver),
                }
            }
            program_workload => {
                let per_point;
                let program = match &self.base_program {
                    Some(shared) => shared,
                    None => {
                        per_point = program_workload
                            .program()
                            .expect("non-batch workloads generate programs");
                        &per_point
                    }
                };
                let mut driver = ProgramDriver::new(&net, layout, program)
                    .expect("validated scenario points fit the grid");
                let report = match observe {
                    Some(obs) => {
                        let probe = RecordingProbe::with_bins(obs.bins);
                        let (report, probe) = NetworkSim::with_topology_probe(net, topo, probe)
                            .run_traced(&mut driver);
                        write_traces(obs, &self.name, trace_tag.0, trace_tag.1, &probe);
                        report
                    }
                    None => NetworkSim::with_topology(net, topo).run(&mut driver),
                };
                driver.assert_finished();
                report
            }
        }
    }
}

fn run_machine(
    spec: &ScenarioSpec,
    machine: &MachineSpec,
    workload: &WorkloadSpec,
    mode: ExecMode,
) -> Result<ExecOutcome, ScenarioError> {
    let me = MachineEval::new(spec, machine, workload);
    let eval = |point: &qic_sweep::SweepPoint<'_>, ctx: qic_sweep::RunCtx| me.eval(point, ctx);
    if let (ExecMode::Full, Some(obs), None) = (mode, me.observe.as_ref(), spec.checkpoint.as_ref())
    {
        // Campaign-level observability rides along: a machine-
        // readable progress stream (wall-clock, outside the
        // determinism contract) next to the traces. Checkpointed and
        // sharded runs skip the stream (their eval still writes
        // per-point traces) — the manifest / shard merge is their
        // progress record.
        let total = spec.param_space().len() * spec.replicates as usize;
        let path = Path::new(&obs.dir).join(format!("{}.progress.jsonl", spec.name));
        let file = std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("creating {}: {e}", path.display()));
        return Ok(ExecOutcome::Report(
            campaign(spec).run_with_progress(eval, &JsonlProgress::new(file, total)),
        ));
    }
    execute(spec, mode, eval)
}

/// The owned evaluator behind channel experiments — the closed-form
/// pair-budget model. Like [`MachineEval`], it serves the scoped pool
/// borrowed and the shared [`Executor`] `Arc`'d.
struct ChannelEval {
    axes: Vec<ScenarioAxis>,
    placement: PurifyPlacement,
    hops: u32,
    metric: PairMetric,
}

impl ChannelEval {
    fn new(
        spec: &ScenarioSpec,
        placement: PurifyPlacement,
        hops: u32,
        metric: PairMetric,
    ) -> ChannelEval {
        ChannelEval {
            axes: spec.axes.clone(),
            placement,
            hops,
            metric,
        }
    }

    fn eval(&self, point: &qic_sweep::SweepPoint<'_>, _ctx: qic_sweep::RunCtx) -> Metrics {
        let mut placement = self.placement;
        let mut hops = self.hops;
        let mut rates = None;
        for (a, axis) in self.axes.iter().enumerate() {
            axis.apply_channel(point.coord(a), &mut placement, &mut hops, &mut rates);
        }
        let mut model = ChannelModel::ion_trap().with_placement(placement);
        if let Some(rates) = rates {
            model = model.with_rates(rates);
        }
        Metrics::new().with("pairs", pair_budget(&model, hops, self.metric))
    }
}

fn run_channel(
    spec: &ScenarioSpec,
    base_placement: PurifyPlacement,
    base_hops: u32,
    metric: PairMetric,
    mode: ExecMode,
) -> Result<ExecOutcome, ScenarioError> {
    let ce = ChannelEval::new(spec, base_placement, base_hops, metric);
    execute(spec, mode, |point, ctx| ce.eval(point, ctx))
}
