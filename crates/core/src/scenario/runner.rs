//! The single entry point: `run(&spec) -> ScenarioReport`.

use std::path::Path;

use qic_analytic::figures::pair_budget;
use qic_analytic::plan::ChannelModel;
use qic_analytic::strategy::PurifyPlacement;
use qic_net::sim::{BatchDriver, NetworkSim};
use qic_net::topology::Coord;
use qic_probe::RecordingProbe;
use qic_sweep::{Campaign, CampaignReport, JsonlProgress, Metrics};

use crate::machine::Machine;
use crate::scenario::spec::{
    ExperimentSpec, MachineSpec, ObserveSpec, ScenarioError, ScenarioSpec, WorkloadSpec,
};
use crate::scheduler::ProgramDriver;

/// The result of running a scenario: the spec that produced it plus the
/// full campaign report.
///
/// The report is byte-identical however the run was scheduled (worker
/// count, thread interleaving); see `qic-sweep`'s determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// The spec that was run (after validation).
    pub spec: ScenarioSpec,
    /// Per-point results, CSV/JSON emitters included.
    pub report: CampaignReport,
}

impl ScenarioReport {
    /// The campaign report as deterministic CSV.
    pub fn to_csv(&self) -> String {
        self.report.to_csv()
    }

    /// The campaign report as deterministic JSON.
    pub fn to_json(&self) -> String {
        self.report.to_json()
    }
}

/// Runs a scenario: validates the spec, builds the campaign its axes
/// describe, evaluates every point (in parallel, deterministically) and
/// returns the report.
///
/// This is the one entry point every experiment goes through — the
/// figure presets in [`crate::scenario::ScenarioRegistry`], the
/// examples, and ad-hoc specs loaded from JSON.
///
/// # Errors
///
/// [`ScenarioError`] if the spec fails validation; running a validated
/// spec cannot fail.
pub fn run(spec: &ScenarioSpec) -> Result<ScenarioReport, ScenarioError> {
    spec.validate()?;
    let report = match &spec.experiment {
        ExperimentSpec::Machine { machine, workload } => run_machine(spec, machine, workload),
        ExperimentSpec::Channel {
            placement,
            hops,
            metric,
        } => run_channel(spec, *placement, *hops, *metric),
    };
    Ok(ScenarioReport {
        spec: spec.clone(),
        report,
    })
}

fn campaign(spec: &ScenarioSpec) -> Campaign {
    Campaign::new(spec.name.clone(), spec.param_space())
        .seed(spec.seed)
        .replicates(spec.replicates)
        .workers(spec.workers)
}

/// Writes one evaluation's trace exports under the observe directory.
/// The file stem is `{name}_p{index:04}_r{replicate}`, with any
/// path-hostile characters of the scenario name mapped to `_`.
fn write_traces(
    obs: &ObserveSpec,
    name: &str,
    point: usize,
    replicate: u32,
    probe: &RecordingProbe,
) {
    let stem: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let base = Path::new(&obs.dir).join(format!("{stem}_p{point:04}_r{replicate}"));
    if obs.events {
        let path = base.with_extension("events.jsonl");
        std::fs::write(&path, probe.events_jsonl())
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    }
    if obs.chrome_trace {
        let path = base.with_extension("trace.json");
        std::fs::write(&path, probe.chrome_trace())
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    }
}

fn run_machine(
    spec: &ScenarioSpec,
    machine: &MachineSpec,
    workload: &WorkloadSpec,
) -> CampaignReport {
    // Unless a workload axis varies it per point, generate the program
    // once up front (QFT-256 is tens of thousands of instructions).
    let workload_varies = spec
        .axes
        .iter()
        .any(|a| matches!(a, crate::scenario::ScenarioAxis::Workloads { .. }));
    let base_program = if workload_varies {
        None
    } else {
        workload.program()
    };
    let observe = spec.observe.as_ref();
    if let Some(obs) = observe {
        std::fs::create_dir_all(&obs.dir)
            .unwrap_or_else(|e| panic!("creating observe directory {}: {e}", obs.dir));
    }
    let eval = |point: &qic_sweep::SweepPoint<'_>, ctx: qic_sweep::RunCtx| -> Metrics {
        let mut net = machine.net_config();
        let mut layout = machine.layout;
        let mut wl = workload.clone();
        let mut fault = machine.fault.clone();
        for (a, axis) in spec.axes.iter().enumerate() {
            axis.apply_machine(point.coord(a), &mut net, &mut layout, &mut wl, &mut fault);
        }
        // Per-point derived seeds follow the engine's replication
        // contract; the net RNG only draws classical correction bits,
        // which never move simulated time, so they cannot shift a
        // figure's numbers. The fault plan keeps its *own* declared
        // seed: which components die is part of the scenario, not of
        // the replication noise.
        net.seed = ctx.seed;
        // Scenarios with a fault plan run over the compiled degraded
        // fabric (even at rate zero, so a fault sweep reports the same
        // metric columns at every point); plain scenarios take the
        // untouched healthy path.
        let degraded = fault.map(|plan| plan.compile(net.fabric()));
        match &wl {
            WorkloadSpec::Batch { comms } => {
                let batch = comms
                    .iter()
                    .map(|&((sx, sy), (dx, dy))| (Coord::new(sx, sy), Coord::new(dx, dy)))
                    .collect();
                let mut driver = BatchDriver::new(batch);
                match observe {
                    Some(obs) => {
                        let probe = RecordingProbe::with_bins(obs.bins);
                        let (report, probe) = match degraded {
                            Some(topo) => NetworkSim::with_topology_probe(net, topo, probe)
                                .run_traced(&mut driver),
                            None => NetworkSim::with_probe(net, probe).run_traced(&mut driver),
                        };
                        write_traces(obs, &spec.name, point.index(), ctx.replicate, &probe);
                        report
                    }
                    None => match degraded {
                        Some(topo) => NetworkSim::with_topology(net, topo).run(&mut driver),
                        None => NetworkSim::new(net).run(&mut driver),
                    },
                }
                .metrics()
            }
            program_workload => {
                let per_point;
                let program = match &base_program {
                    Some(shared) => shared,
                    None => {
                        per_point = program_workload
                            .program()
                            .expect("non-batch workloads generate programs");
                        &per_point
                    }
                };
                match (degraded, observe) {
                    (Some(topo), observe) => {
                        // The scheduler drives the degraded fabric
                        // directly; dropped communications still retire
                        // their instructions, so degraded programs
                        // always drain (delivered/dropped counts tell
                        // the resilience story).
                        let mut driver = ProgramDriver::new(&net, layout, program)
                            .expect("validated scenario points fit the grid");
                        let report = match observe {
                            Some(obs) => {
                                let probe = RecordingProbe::with_bins(obs.bins);
                                let (report, probe) =
                                    NetworkSim::with_topology_probe(net, topo, probe)
                                        .run_traced(&mut driver);
                                write_traces(obs, &spec.name, point.index(), ctx.replicate, &probe);
                                report
                            }
                            None => NetworkSim::with_topology(net, topo).run(&mut driver),
                        };
                        driver.assert_finished();
                        report.metrics()
                    }
                    (None, Some(obs)) => {
                        // Same construction Machine::run performs
                        // (ProgramDriver's default gate time is the
                        // machine builder's), with the probe attached.
                        let mut driver = ProgramDriver::new(&net, layout, program)
                            .expect("validated scenario points fit the grid");
                        let probe = RecordingProbe::with_bins(obs.bins);
                        let (report, probe) =
                            NetworkSim::with_probe(net, probe).run_traced(&mut driver);
                        driver.assert_finished();
                        write_traces(obs, &spec.name, point.index(), ctx.replicate, &probe);
                        report.metrics()
                    }
                    (None, None) => {
                        let mut b = Machine::builder();
                        b.net_config(net).layout(layout);
                        let machine = b.build().expect("validated scenario points build");
                        machine.run(program).net.metrics()
                    }
                }
            }
        }
    };
    match observe {
        Some(obs) => {
            // Campaign-level observability rides along: a machine-
            // readable progress stream (wall-clock, outside the
            // determinism contract) next to the traces.
            let total = spec.param_space().len() * spec.replicates as usize;
            let path = Path::new(&obs.dir).join(format!("{}.progress.jsonl", spec.name));
            let file = std::fs::File::create(&path)
                .unwrap_or_else(|e| panic!("creating {}: {e}", path.display()));
            campaign(spec).run_with_progress(eval, &JsonlProgress::new(file, total))
        }
        None => campaign(spec).run(eval),
    }
}

fn run_channel(
    spec: &ScenarioSpec,
    base_placement: PurifyPlacement,
    base_hops: u32,
    metric: qic_analytic::figures::PairMetric,
) -> CampaignReport {
    campaign(spec).run(|point, _ctx| {
        let mut placement = base_placement;
        let mut hops = base_hops;
        let mut rates = None;
        for (a, axis) in spec.axes.iter().enumerate() {
            axis.apply_channel(point.coord(a), &mut placement, &mut hops, &mut rates);
        }
        let mut model = ChannelModel::ion_trap().with_placement(placement);
        if let Some(rates) = rates {
            model = model.with_rates(rates);
        }
        Metrics::new().with("pairs", pair_budget(&model, hops, metric))
    })
}
