//! The machine builder: one object tying the whole stack together.

use std::fmt;

use serde::{Deserialize, Serialize};

use qic_net::config::NetConfig;
use qic_net::report::NetReport;
use qic_net::routing::RoutingPolicy;
use qic_net::sim::NetworkSim;
use qic_net::topology::TopologyKind;
use qic_physics::time::Duration;
use qic_workload::Program;

use crate::layout::Layout;
use crate::scheduler::ProgramDriver;

/// Errors raised when building or running a [`Machine`].
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// The network configuration failed validation.
    InvalidConfig(String),
    /// The program needs more logical qubits than the grid has sites.
    Capacity {
        /// Qubits requested.
        qubits: u32,
        /// Sites available.
        sites: u32,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::InvalidConfig(msg) => write!(f, "invalid machine config: {msg}"),
            MachineError::Capacity { qubits, sites } => {
                write!(f, "program needs {qubits} qubits, grid has {sites} sites")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// Results of one program execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Total simulated execution time.
    pub makespan: Duration,
    /// Logical instructions completed.
    pub instructions: u64,
    /// The layout used.
    pub layout: Layout,
    /// Full network-level statistics.
    pub net: NetReport,
}

impl RunReport {
    /// Makespan ratio against a baseline run (Figure 16's y-axis).
    pub fn normalized_to(&self, baseline: &RunReport) -> f64 {
        self.makespan / baseline.makespan
    }
}

/// A fully configured quantum machine: grid, resources and layout.
///
/// Construct via [`Machine::builder`]; run programs with
/// [`Machine::run`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    net: NetConfig,
    layout: Layout,
    gate_time: Duration,
}

impl Machine {
    /// Starts a builder with paper-scale defaults.
    pub fn builder() -> MachineBuilder {
        MachineBuilder::default()
    }

    /// The network configuration.
    pub fn net_config(&self) -> &NetConfig {
        &self.net
    }

    /// The layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Runs a program to completion.
    ///
    /// # Panics
    ///
    /// Panics if the program needs more qubits than the grid has sites
    /// (use [`Machine::try_run`] for a fallible variant) or if the
    /// simulation exceeds its event budget.
    pub fn run(&self, program: &Program) -> RunReport {
        self.try_run(program).expect("program must fit the machine")
    }

    /// Runs a program, validating capacity first.
    ///
    /// # Errors
    ///
    /// [`MachineError::Capacity`] if the program does not fit the grid.
    pub fn try_run(&self, program: &Program) -> Result<RunReport, MachineError> {
        let mut driver =
            ProgramDriver::with_gate_time(&self.net, self.layout, program, self.gate_time)
                .map_err(|e| MachineError::Capacity {
                    qubits: e.qubits,
                    sites: e.sites,
                })?;
        let net = NetworkSim::new(self.net.clone()).run(&mut driver);
        driver.assert_finished();
        Ok(RunReport {
            makespan: net.makespan,
            instructions: driver.completed(),
            layout: self.layout,
            net,
        })
    }
}

/// Builder for [`Machine`] (guideline C-BUILDER).
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    net: NetConfig,
    layout: Layout,
    gate_time: Duration,
}

impl Default for MachineBuilder {
    fn default() -> Self {
        MachineBuilder {
            net: NetConfig::paper_scale(),
            layout: Layout::HomeBase,
            gate_time: Duration::from_micros(20),
        }
    }
}

impl MachineBuilder {
    /// Sets the grid dimensions (LQ/T' sites).
    pub fn grid(&mut self, width: u16, height: u16) -> &mut Self {
        self.net.mesh_width = width;
        self.net.mesh_height = height;
        self
    }

    /// Selects the interconnect fabric joining the sites (default: the
    /// paper's mesh).
    pub fn topology(&mut self, kind: TopologyKind) -> &mut Self {
        self.net.topology = kind;
        self
    }

    /// Selects the channel routing policy (default: dimension-order).
    pub fn routing(&mut self, routing: RoutingPolicy) -> &mut Self {
        self.net.routing = routing;
        self
    }

    /// Sets the three resource knobs `t`, `g`, `p` of Section 5.3.
    pub fn resources(&mut self, t: u32, g: u32, p: u32) -> &mut Self {
        self.net.teleporters_per_node = t;
        self.net.generators_per_edge = g;
        self.net.purifiers_per_site = p;
        self
    }

    /// Sets purified pairs needed per logical communication (qubits per
    /// logical qubit).
    pub fn outputs_per_comm(&mut self, outputs: u32) -> &mut Self {
        self.net.outputs_per_comm = outputs;
        self
    }

    /// Sets the queue purifier depth.
    pub fn purify_depth(&mut self, depth: u32) -> &mut Self {
        self.net.purify_depth = depth;
        self
    }

    /// Sets the layout.
    pub fn layout(&mut self, layout: Layout) -> &mut Self {
        self.layout = layout;
        self
    }

    /// Sets the logical gate latency charged between channel completion
    /// and the follow-up movement.
    pub fn gate_time(&mut self, d: Duration) -> &mut Self {
        self.gate_time = d;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.net.seed = seed;
        self
    }

    /// Replaces the whole network configuration (advanced).
    pub fn net_config(&mut self, net: NetConfig) -> &mut Self {
        self.net = net;
        self
    }

    /// Builds the machine.
    ///
    /// # Errors
    ///
    /// [`MachineError::InvalidConfig`] if the network configuration fails
    /// validation.
    pub fn build(&self) -> Result<Machine, MachineError> {
        self.net
            .validate()
            .map_err(|e| MachineError::InvalidConfig(e.to_string()))?;
        Ok(Machine {
            net: self.net.clone(),
            layout: self.layout,
            gate_time: self.gate_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_machine(layout: Layout) -> Machine {
        let mut b = Machine::builder();
        b.net_config(NetConfig::small_test()).layout(layout);
        b.build().unwrap()
    }

    #[test]
    fn builder_round_trip() {
        let mut b = Machine::builder();
        b.grid(4, 4)
            .resources(4, 4, 2)
            .outputs_per_comm(2)
            .purify_depth(1)
            .gate_time(Duration::from_micros(20))
            .seed(7)
            .topology(TopologyKind::Torus)
            .routing(RoutingPolicy::MinimalAdaptive)
            .layout(Layout::MobileQubit);
        let m = b.build().unwrap();
        assert_eq!(m.layout(), Layout::MobileQubit);
        assert_eq!(m.net_config().mesh_width, 4);
        assert_eq!(m.net_config().purifiers_per_site, 2);
        assert_eq!(m.net_config().topology, TopologyKind::Torus);
        assert_eq!(m.net_config().routing, RoutingPolicy::MinimalAdaptive);
    }

    #[test]
    fn programs_run_on_every_fabric() {
        let program = Program::qft(8);
        let mut makespans = Vec::new();
        for kind in TopologyKind::ALL {
            let mut b = Machine::builder();
            b.net_config(NetConfig::small_test()).topology(kind);
            let report = b.build().unwrap().run(&program);
            assert_eq!(report.instructions as usize, program.len(), "{kind}");
            makespans.push(report.makespan);
        }
        // Wrap-around links shorten Home-Base return trips: the torus
        // cannot be slower than the mesh on identical traffic.
        assert!(makespans[1] <= makespans[0], "{makespans:?}");
    }

    #[test]
    fn invalid_config_is_reported() {
        let mut b = Machine::builder();
        b.resources(0, 4, 4);
        let err = b.build().unwrap_err();
        assert!(matches!(err, MachineError::InvalidConfig(_)));
        assert!(err.to_string().contains("teleporter"));
    }

    #[test]
    fn capacity_is_checked() {
        let m = small_machine(Layout::HomeBase);
        let program = Program::qft(64); // 4×4 grid holds 16
        let err = m.try_run(&program).unwrap_err();
        assert_eq!(
            err,
            MachineError::Capacity {
                qubits: 64,
                sites: 16
            }
        );
    }

    #[test]
    fn qft_runs_end_to_end() {
        let m = small_machine(Layout::HomeBase);
        let program = Program::qft(8);
        let report = m.run(&program);
        assert_eq!(report.instructions as usize, program.len());
        assert_eq!(report.layout, Layout::HomeBase);
        assert!(report.makespan.as_ms_f64() > 0.0);
        assert_eq!(report.net.comms_completed, 2 * program.len() as u64);
    }

    #[test]
    fn normalization_against_rich_machine() {
        let program = Program::qft(8);
        let poor = small_machine(Layout::HomeBase).run(&program);
        let mut b = Machine::builder();
        b.net_config(NetConfig::small_test()).resources(64, 64, 64);
        let rich_machine = b.build().unwrap();
        let rich = rich_machine.run(&program);
        let ratio = poor.normalized_to(&rich);
        assert!(ratio >= 1.0, "scarce resources cannot be faster: {ratio}");
    }
}
