//! Property-based tests for purification: the closed-form recurrences
//! must agree with the independent Pauli-frame circuit simulation on all
//! inputs, and outputs must stay physical.

use proptest::prelude::*;

use qic_physics::bell::BellDiagonal;
use qic_purify::frame::{simulate, PreRotation};
use qic_purify::protocol::{Protocol, RoundNoise};

fn bell_diagonal() -> impl Strategy<Value = BellDiagonal> {
    (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64)
        .prop_filter("non-degenerate", |(a, b, c, d)| a + b + c + d > 1e-6)
        .prop_map(|(a, b, c, d)| {
            let sum = a + b + c + d;
            BellDiagonal::new([a / sum, b / sum, c / sum, d / sum]).expect("valid")
        })
}

proptest! {
    #[test]
    fn dejmps_recurrence_equals_frame_simulation(
        kept in bell_diagonal(),
        sacrificed in bell_diagonal(),
    ) {
        let formula = Protocol::Dejmps.step_asymmetric(&kept, &sacrificed);
        let sim = simulate(&kept, &sacrificed, PreRotation::Dejmps);
        prop_assert!((formula.success_prob - sim.success_prob).abs() < 1e-12);
        if sim.success_prob > 1e-9 {
            prop_assert!(
                formula.state.approx_eq(&sim.state, 1e-9),
                "formula {} vs frame {}",
                formula.state,
                sim.state
            );
        }
    }

    #[test]
    fn bbpssw_matches_frame_simulation_on_werner(
        f in 0.26..0.999f64,
    ) {
        let w = BellDiagonal::werner_f64(f).unwrap();
        let formula = Protocol::Bbpssw.step(&w);
        let sim = simulate(&w, &w, PreRotation::None);
        prop_assert!((formula.success_prob - sim.success_prob).abs() < 1e-12);
        prop_assert!(
            (formula.state.fidelity().value() - sim.state.fidelity().value()).abs() < 1e-9
        );
    }

    #[test]
    fn outputs_are_distributions_with_valid_probabilities(
        kept in bell_diagonal(),
        sacrificed in bell_diagonal(),
    ) {
        for protocol in Protocol::ALL {
            let out = protocol.step_asymmetric(&kept, &sacrificed);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&out.success_prob));
            let coeffs = out.state.coeffs();
            prop_assert!(coeffs.iter().all(|&c| c >= -1e-12));
            prop_assert!((coeffs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn noise_never_improves_the_outcome(state in bell_diagonal()) {
        let noise = RoundNoise::ion_trap();
        for protocol in Protocol::ALL {
            let ideal = protocol.step(&state);
            // Depolarization pulls toward fidelity 1/4, so it only hurts
            // states that are better than maximally mixed.
            if ideal.state.fidelity().value() < 0.25 {
                continue;
            }
            let noisy = protocol.noisy_step(&state, &noise);
            prop_assert!(noisy.state.fidelity() <= ideal.state.fidelity());
        }
    }

    #[test]
    fn werner_above_half_improves_under_dejmps(f in 0.51..0.999f64) {
        let w = BellDiagonal::werner_f64(f).unwrap();
        let out = Protocol::Dejmps.step(&w);
        prop_assert!(out.state.fidelity().value() > f);
    }

    #[test]
    fn queue_purifier_counts_are_exact(depth in 1u32..5, feeds in 1u32..64) {
        let mut q = qic_purify::queue::QueuePurifier::new(
            depth,
            Protocol::Dejmps,
            RoundNoise::noiseless(),
        );
        let raw = BellDiagonal::werner_f64(0.99).unwrap();
        let mut outputs = 0u32;
        for _ in 0..feeds {
            if q.feed_expected(raw).is_some() {
                outputs += 1;
            }
        }
        prop_assert_eq!(u64::from(outputs), u64::from(feeds) >> depth);
        // The queue behaves as a binary counter: occupancy equals the
        // popcount of the residual feed count.
        let residual = feeds & ((1u32 << depth) - 1);
        prop_assert_eq!(q.occupancy(), residual.count_ones() as usize);
    }
}
