//! Purification protocols — **Section 4.5**.
//!
//! Two tree protocols are compared by the paper:
//!
//! * **DEJMPS** (Deutsch et al., PRL 77:2818): bilateral `Rx(±π/2)`
//!   rotations, bilateral CNOT, measure the target pair, keep on agreement.
//!   Operates on general Bell-diagonal states.
//! * **BBPSSW** (Bennett et al., PRL 76:722): bilateral CNOT on *Werner*
//!   states, with a twirl after every round to return the survivor to
//!   Werner form. The twirl "partially randomizes its state", which is why
//!   the paper finds it converges 5–10× slower.
//!
//! A third, non-tree option (Dür's entanglement *pumping*, footnote 3) is
//! provided as [`Protocol::step_asymmetric`] applied repeatedly with fresh
//! base pairs.

use std::fmt;

use serde::{Deserialize, Serialize};

use qic_physics::bell::BellDiagonal;
use qic_physics::error::ErrorRates;

/// The result of one purification attempt on a *kept* pair: the surviving
/// state (conditioned on success) and the probability that the endpoint
/// measurements agreed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PurifyOutcome {
    /// Surviving state, conditioned on success.
    pub state: BellDiagonal,
    /// Probability the round succeeds (classical bits agree, Figure 7).
    pub success_prob: f64,
}

/// Per-round noise model for purification hardware.
///
/// The paper does not spell out its noisy-round model; following standard
/// practice (Dür & Briegel) we apply the ideal recurrence map, then mix the
/// survivor isotropically with strength equal to the summed error
/// probability of the local operations one round costs:
///
/// * DEJMPS: 4 one-qubit rotations + 2 CNOTs + 2 measurements,
/// * BBPSSW: the same plus ~4 extra one-qubit twirl rotations.
///
/// This reproduces the published behaviour: a protocol-dependent fidelity
/// *floor* set by operation error, and the Figure 12 breakdown near a
/// uniform error rate of 1e-5 (see `qic-analytic`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundNoise {
    /// Isotropic mix applied per DEJMPS round.
    dejmps_eps: f64,
    /// Isotropic mix applied per BBPSSW round (includes twirl cost).
    bbpssw_eps: f64,
    /// Probability one endpoint misreads its measurement, flipping the
    /// keep/discard comparison.
    measure_flip: f64,
}

impl RoundNoise {
    /// Noise-free rounds (the ideal recurrences).
    pub fn noiseless() -> Self {
        RoundNoise {
            dejmps_eps: 0.0,
            bbpssw_eps: 0.0,
            measure_flip: 0.0,
        }
    }

    /// Derives round noise from device error rates.
    pub fn from_rates(rates: &ErrorRates) -> Self {
        let base =
            4.0 * rates.one_qubit_gate() + 2.0 * rates.two_qubit_gate() + 2.0 * rates.measure();
        let twirl = 4.0 * rates.one_qubit_gate();
        RoundNoise {
            dejmps_eps: base.min(1.0),
            bbpssw_eps: (base + twirl).min(1.0),
            measure_flip: (2.0 * rates.measure()).min(1.0),
        }
    }

    /// Round noise for the published ion-trap rates (Table 2).
    pub fn ion_trap() -> Self {
        RoundNoise::from_rates(&ErrorRates::ion_trap())
    }

    /// The isotropic per-round mix for a protocol.
    pub fn eps(&self, protocol: Protocol) -> f64 {
        match protocol {
            Protocol::Dejmps => self.dejmps_eps,
            Protocol::Bbpssw => self.bbpssw_eps,
        }
    }

    /// Probability the success comparison is corrupted by a measurement
    /// misread.
    pub fn measure_flip(&self) -> f64 {
        self.measure_flip
    }
}

impl Default for RoundNoise {
    /// Same as [`RoundNoise::ion_trap`].
    fn default() -> Self {
        RoundNoise::ion_trap()
    }
}

/// The tree purification protocols analysed by the paper (Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// Deutsch et al. — the paper's choice for all further analysis.
    Dejmps,
    /// Bennett et al. — retained for comparison; converges 5–10× slower.
    Bbpssw,
}

impl Protocol {
    /// Both protocols, for sweep loops.
    pub const ALL: [Protocol; 2] = [Protocol::Dejmps, Protocol::Bbpssw];

    /// One **ideal** purification round combining two copies of `state`
    /// (one level of the purification tree).
    pub fn step(self, state: &BellDiagonal) -> PurifyOutcome {
        self.step_asymmetric(state, state)
    }

    /// One **ideal** purification round combining a `kept` pair with a
    /// `sacrificed` pair that may be in a different state.
    ///
    /// The symmetric case is tree purification; the asymmetric case is
    /// entanglement pumping (Dür, footnote 3 of the paper), where a stored
    /// pair is repeatedly purified with fresh low-fidelity pairs.
    pub fn step_asymmetric(self, kept: &BellDiagonal, sacrificed: &BellDiagonal) -> PurifyOutcome {
        match self {
            Protocol::Dejmps => dejmps_step(kept, sacrificed),
            Protocol::Bbpssw => bbpssw_step(kept, sacrificed),
        }
    }

    /// One **noisy** purification round: the ideal map followed by the
    /// per-round isotropic mix, with the success probability damped by
    /// measurement misreads.
    pub fn noisy_step(self, state: &BellDiagonal, noise: &RoundNoise) -> PurifyOutcome {
        self.noisy_step_asymmetric(state, state, noise)
    }

    /// Asymmetric variant of [`Protocol::noisy_step`].
    pub fn noisy_step_asymmetric(
        self,
        kept: &BellDiagonal,
        sacrificed: &BellDiagonal,
        noise: &RoundNoise,
    ) -> PurifyOutcome {
        let ideal = self.step_asymmetric(kept, sacrificed);
        let state = ideal.state.depolarize(noise.eps(self));
        // A misread measurement turns a should-keep into a discard and vice
        // versa; to first order it only rescales the success probability.
        let flip = noise.measure_flip();
        let success_prob = ideal.success_prob * (1.0 - flip) + (1.0 - ideal.success_prob) * flip;
        PurifyOutcome {
            state,
            success_prob,
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Dejmps => f.write_str("DEJMPS"),
            Protocol::Bbpssw => f.write_str("BBPSSW"),
        }
    }
}

/// The DEJMPS recurrence. With coefficients `(a, b, c, d)` over
/// `(Φ⁺, Ψ⁻, Ψ⁺, Φ⁻)` for the kept pair and `(a', b', c', d')` for the
/// sacrificed pair:
///
/// ```text
/// A = (a·a' + b·b') / N      B = (c·d' + d·c') / N
/// C = (c·c' + d·d') / N      D = (a·b' + b·a') / N
/// N = (a + b)(a' + b') + (c + d)(c' + d')
/// ```
///
/// (the symmetric case reduces to the published
/// `A = (a² + b²)/N, B = 2cd/N, C = (c² + d²)/N, D = 2ab/N`).
/// Derived from the bilateral-CNOT Pauli-frame action; `crate::frame`
/// re-derives it by explicit enumeration and the test suite checks both.
fn dejmps_step(kept: &BellDiagonal, sacrificed: &BellDiagonal) -> PurifyOutcome {
    let [a1, b1, c1, d1] = kept.coeffs();
    let [a2, b2, c2, d2] = sacrificed.coeffs();
    let n = (a1 + b1) * (a2 + b2) + (c1 + d1) * (c2 + d2);
    if n <= f64::EPSILON {
        return PurifyOutcome {
            state: BellDiagonal::maximally_mixed(),
            success_prob: 0.0,
        };
    }
    let coeffs = [
        (a1 * a2 + b1 * b2) / n,
        (c1 * d2 + d1 * c2) / n,
        (c1 * c2 + d1 * d2) / n,
        (a1 * b2 + b1 * a2) / n,
    ];
    PurifyOutcome {
        state: BellDiagonal::new(coeffs).expect("recurrence preserves normalisation"),
        success_prob: n,
    }
}

/// The BBPSSW recurrence: both inputs are twirled to Werner form, the
/// bilateral CNOT is applied, and the survivor is twirled again.
fn bbpssw_step(kept: &BellDiagonal, sacrificed: &BellDiagonal) -> PurifyOutcome {
    let f1 = kept.fidelity().value();
    let f2 = sacrificed.fidelity().value();
    let r1 = (1.0 - f1) / 3.0;
    let r2 = (1.0 - f2) / 3.0;
    // Success: the X-frame components of the two (twirled) pairs agree.
    let n = (f1 + r1) * (f2 + r2) + (2.0 * r1) * (2.0 * r2);
    if n <= f64::EPSILON {
        return PurifyOutcome {
            state: BellDiagonal::maximally_mixed(),
            success_prob: 0.0,
        };
    }
    let f_new = (f1 * f2 + r1 * r2) / n;
    PurifyOutcome {
        state: BellDiagonal::werner(qic_physics::fidelity::Fidelity::new_clamped(f_new)),
        success_prob: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qic_physics::fidelity::Fidelity;

    #[test]
    fn dejmps_textbook_values() {
        // Hand-computed iteration from the Werner state F = 0.9 (see the
        // derivation in DESIGN.md §2): F₁ ≈ 0.9268, F₂ ≈ 0.9889.
        let w = BellDiagonal::werner_f64(0.9).unwrap();
        let r1 = Protocol::Dejmps.step(&w);
        assert!(
            (r1.state.fidelity().value() - 0.9268).abs() < 5e-4,
            "{}",
            r1.state
        );
        let r2 = Protocol::Dejmps.step(&r1.state);
        assert!(
            (r2.state.fidelity().value() - 0.9889).abs() < 5e-4,
            "{}",
            r2.state
        );
    }

    #[test]
    fn bbpssw_textbook_values() {
        // F' = (F² + (1−F)²/9) / (F² + 2F(1−F)/3 + 5(1−F)²/9); F=0.9 → ≈0.9265.
        let w = BellDiagonal::werner_f64(0.9).unwrap();
        let out = Protocol::Bbpssw.step(&w);
        let f = 0.9f64;
        let expected = (f * f + (1.0 - f).powi(2) / 9.0)
            / (f * f + 2.0 * f * (1.0 - f) / 3.0 + 5.0 * (1.0 - f).powi(2) / 9.0);
        assert!((out.state.fidelity().value() - expected).abs() < 1e-12);
    }

    #[test]
    fn success_probability_matches_bbpssw_denominator() {
        let f = 0.85f64;
        let w = BellDiagonal::werner_f64(f).unwrap();
        let out = Protocol::Bbpssw.step(&w);
        let expected = f * f + 2.0 * f * (1.0 - f) / 3.0 + 5.0 * (1.0 - f).powi(2) / 9.0;
        assert!((out.success_prob - expected).abs() < 1e-12);
    }

    #[test]
    fn both_protocols_improve_good_pairs() {
        for protocol in Protocol::ALL {
            let w = BellDiagonal::werner_f64(0.95).unwrap();
            let out = protocol.step(&w);
            assert!(out.state.fidelity().value() > 0.95, "{protocol}");
            assert!(out.success_prob > 0.85, "{protocol}");
        }
    }

    #[test]
    fn purification_fails_below_half() {
        // F = 1/2 is the entanglement boundary: Werner states at or below
        // it cannot be purified.
        for protocol in Protocol::ALL {
            let w = BellDiagonal::werner_f64(0.5).unwrap();
            let out = protocol.step(&w);
            assert!(
                out.state.fidelity().value() <= 0.5 + 1e-12,
                "{protocol} must not purify an unentangled state"
            );
        }
    }

    #[test]
    fn dejmps_converges_to_perfect_without_noise() {
        let mut s = BellDiagonal::werner_f64(0.99).unwrap();
        for _ in 0..8 {
            s = Protocol::Dejmps.step(&s).state;
        }
        assert!(s.error() < 1e-12, "ideal DEJMPS fixed point is Φ⁺, got {s}");
    }

    #[test]
    fn bbpssw_converges_slower_than_dejmps() {
        // Count ideal rounds to reach error 1e-5 from F=0.99.
        let target = 1e-5;
        let mut counts = Vec::new();
        for protocol in Protocol::ALL {
            let mut s = BellDiagonal::werner_f64(0.99).unwrap();
            let mut rounds = 0;
            while s.error() > target && rounds < 100 {
                s = protocol.step(&s).state;
                rounds += 1;
            }
            counts.push(rounds);
        }
        let (dejmps, bbpssw) = (counts[0], counts[1]);
        assert!(
            bbpssw >= 5 * dejmps,
            "paper: BBPSSW takes 5-10x more rounds (DEJMPS {dejmps}, BBPSSW {bbpssw})"
        );
    }

    #[test]
    fn noisy_rounds_have_a_floor() {
        let noise = RoundNoise::ion_trap();
        let mut s = BellDiagonal::werner_f64(0.99).unwrap();
        for _ in 0..30 {
            s = Protocol::Dejmps.noisy_step(&s, &noise).state;
        }
        // Floor is set by per-round gate error, well below the 7.5e-5
        // threshold but above zero.
        assert!(s.error() > 1e-8);
        assert!(s.error() < 1e-5);
    }

    #[test]
    fn noisy_floor_is_worse_for_bbpssw() {
        let noise = RoundNoise::ion_trap();
        let mut floors = Vec::new();
        for protocol in Protocol::ALL {
            let mut s = BellDiagonal::werner_f64(0.99).unwrap();
            for _ in 0..200 {
                s = protocol.noisy_step(&s, &noise).state;
            }
            floors.push(s.error());
        }
        assert!(
            floors[1] > floors[0],
            "BBPSSW floor {} should exceed DEJMPS floor {}",
            floors[1],
            floors[0]
        );
    }

    #[test]
    fn pumping_improves_with_fresh_base_pairs() {
        // Entanglement pumping: keep purifying a stored pair with fresh
        // F=0.99 pairs. The reachable fidelity is limited but real.
        let base = BellDiagonal::werner_f64(0.99).unwrap();
        let mut kept = base;
        for _ in 0..6 {
            kept = Protocol::Dejmps.step_asymmetric(&kept, &base).state;
        }
        // Pumping with F=0.99 Werner base pairs converges to F ≈ 0.9966.
        assert!(kept.fidelity().value() > 0.9960);
        // But it cannot reach the perfect fixed point tree purification has.
        let mut tree = base;
        for _ in 0..6 {
            tree = Protocol::Dejmps.step(&tree).state;
        }
        assert!(tree.fidelity() > kept.fidelity());
    }

    #[test]
    fn degenerate_zero_norm_is_handled() {
        // A state orthogonal to the kept manifold: success probability 0.
        let kept = BellDiagonal::new([0.0, 0.0, 1.0, 0.0]).unwrap();
        let sac = BellDiagonal::new([1.0, 0.0, 0.0, 0.0]).unwrap();
        let out = Protocol::Dejmps.step_asymmetric(&kept, &sac);
        assert!(
            out.success_prob.abs() < 1.0,
            "probability stays a probability"
        );
    }

    #[test]
    fn round_noise_accessors() {
        let noise = RoundNoise::from_rates(&ErrorRates::ion_trap());
        assert!(noise.eps(Protocol::Bbpssw) > noise.eps(Protocol::Dejmps));
        assert!(noise.measure_flip() > 0.0);
        assert_eq!(RoundNoise::noiseless().eps(Protocol::Dejmps), 0.0);
        let _ = Fidelity::ONE; // silence unused import in cfg(test)
    }
}
