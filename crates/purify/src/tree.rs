//! Spatial tree purifiers — the naïve implementation Section 5.1 rejects.
//!
//! A depth-`n` purification tree materialised in hardware needs one
//! purifier unit per internal node (`2ⁿ − 1` units) and provides no natural
//! recovery from a failed purification (the whole subtree is lost). This
//! module models that design so the queue purifier of [`crate::queue`] can
//! be compared against it quantitatively.

use serde::{Deserialize, Serialize};

use qic_physics::bell::BellDiagonal;
use qic_physics::optime::OpTimes;
use qic_physics::time::Duration;

use crate::protocol::{Protocol, RoundNoise};

/// A hardware tree purifier of fixed depth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreePurifier {
    depth: u32,
    protocol: Protocol,
}

impl TreePurifier {
    /// Creates a tree purifier of the given depth (number of rounds).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0 or large enough that `2^depth` overflows
    /// (`depth > 62`).
    pub fn new(depth: u32, protocol: Protocol) -> Self {
        assert!(depth > 0, "a purification tree needs at least one level");
        assert!(depth <= 62, "2^depth must fit in u64");
        TreePurifier { depth, protocol }
    }

    /// Tree depth (purification rounds performed).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The protocol run at every node.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Number of hardware purifier units: one per internal tree node,
    /// `2^depth − 1` (Section 5.1: "as the tree depth increases, the
    /// hardware needs quickly become prohibitive").
    pub fn hardware_units(&self) -> u64 {
        (1u64 << self.depth) - 1
    }

    /// Number of raw input pairs a full tree consumes per attempt
    /// (`2^depth`), ignoring failures.
    pub fn leaf_pairs(&self) -> u64 {
        1u64 << self.depth
    }

    /// Latency of one full tree evaluation: levels run in parallel within
    /// a level, sequentially across levels.
    pub fn latency(&self, times: &OpTimes, endpoint_separation_cells: u64) -> Duration {
        times.purify_round(endpoint_separation_cells) * u64::from(self.depth)
    }

    /// Expected output state and overall success probability for one tree
    /// evaluation fed with `2^depth` copies of `input`.
    ///
    /// The success probability is the probability that *every* node in the
    /// tree succeeds — the "no natural means of recovering from a failed
    /// purification" drawback.
    pub fn evaluate(&self, input: &BellDiagonal, noise: &RoundNoise) -> (BellDiagonal, f64) {
        let mut state = *input;
        let mut all_succeed = 1.0;
        for level in 0..self.depth {
            let out = self.protocol.noisy_step(&state, noise);
            // Nodes at this level: 2^(depth - level - 1), all must succeed.
            let nodes = 1u64 << (self.depth - level - 1);
            all_succeed *= out.success_prob.powi(nodes.min(i32::MAX as u64) as i32);
            state = out.state;
        }
        (state, all_succeed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_grows_exponentially() {
        let t = |d| TreePurifier::new(d, Protocol::Dejmps).hardware_units();
        assert_eq!(t(1), 1);
        assert_eq!(t(2), 3);
        assert_eq!(t(3), 7);
        assert_eq!(t(10), 1023);
    }

    #[test]
    fn leaf_pairs_are_power_of_two() {
        let t = TreePurifier::new(3, Protocol::Dejmps);
        assert_eq!(t.leaf_pairs(), 8);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.protocol(), Protocol::Dejmps);
    }

    #[test]
    fn latency_is_depth_rounds() {
        let times = OpTimes::ion_trap();
        let t = TreePurifier::new(3, Protocol::Dejmps);
        assert_eq!(t.latency(&times, 0), times.purify_round_local() * 3);
        assert!(t.latency(&times, 600) > t.latency(&times, 0));
    }

    #[test]
    fn evaluate_matches_round_analysis() {
        let noise = RoundNoise::ion_trap();
        let input = BellDiagonal::werner_f64(0.99).unwrap();
        let tree = TreePurifier::new(3, Protocol::Dejmps);
        let (state, p_all) = tree.evaluate(&input, &noise);
        let traj = crate::analysis::trajectory(Protocol::Dejmps, input, 3, &noise);
        assert!(state.approx_eq(&traj[3].state, 1e-12));
        // All-success probability is the product over nodes, which is at
        // most the single-path product.
        let path_prob: f64 = traj[1..].iter().map(|p| p.success_prob).product();
        assert!(p_all <= path_prob + 1e-12);
        assert!(p_all > 0.5, "high-fidelity inputs rarely fail");
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_depth_rejected() {
        let _ = TreePurifier::new(0, Protocol::Dejmps);
    }
}
