//! Round-by-round purification analysis — the machinery behind **Figure 8**
//! and the resource counts of Section 4.7.
//!
//! Tree purification performs `r` *rounds*: round `i` pairs up all
//! surviving level-`i−1` pairs and keeps roughly half (times the success
//! probability). The expected number of raw pairs consumed per output pair
//! is therefore `∏ᵢ 2/pᵢ` — "exponential in the number of rounds"
//! (Section 4.5).

use serde::{Deserialize, Serialize};

use qic_physics::bell::BellDiagonal;

use crate::protocol::{Protocol, RoundNoise};

/// One point of a purification trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundPoint {
    /// Rounds performed so far (0 = the raw input).
    pub round: u32,
    /// State after `round` rounds, conditioned on all successes.
    pub state: BellDiagonal,
    /// Success probability of the round that *produced* this state
    /// (1.0 for round 0).
    pub success_prob: f64,
    /// Expected raw pairs consumed per pair at this level: `∏ 2/pᵢ`.
    pub expected_pairs: f64,
}

/// Runs `rounds` noisy purification rounds starting from `initial`,
/// recording every intermediate state.
///
/// The returned vector has `rounds + 1` entries; entry 0 is the input.
pub fn trajectory(
    protocol: Protocol,
    initial: BellDiagonal,
    rounds: u32,
    noise: &RoundNoise,
) -> Vec<RoundPoint> {
    let mut out = Vec::with_capacity(rounds as usize + 1);
    let mut state = initial;
    let mut expected_pairs = 1.0;
    out.push(RoundPoint {
        round: 0,
        state,
        success_prob: 1.0,
        expected_pairs,
    });
    for round in 1..=rounds {
        let step = protocol.noisy_step(&state, noise);
        state = step.state;
        expected_pairs *= 2.0 / step.success_prob.max(f64::EPSILON);
        out.push(RoundPoint {
            round,
            state,
            success_prob: step.success_prob,
            expected_pairs,
        });
    }
    out
}

/// The minimum number of rounds for `initial` to reach `target_error`, or
/// `None` if the protocol's noise floor makes the target unreachable within
/// `max_rounds`.
pub fn rounds_to_reach(
    protocol: Protocol,
    initial: BellDiagonal,
    target_error: f64,
    noise: &RoundNoise,
    max_rounds: u32,
) -> Option<u32> {
    let mut state = initial;
    if state.error() <= target_error {
        return Some(0);
    }
    let mut best = state.error();
    for round in 1..=max_rounds {
        state = protocol.noisy_step(&state, noise).state;
        let err = state.error();
        if err <= target_error {
            return Some(round);
        }
        // Monotone-progress guard: once the trajectory stops improving it
        // has hit its floor and will never reach the target.
        if err >= best {
            return None;
        }
        best = err;
    }
    None
}

/// The protocol's fixed point (maximum achievable state) from `initial`
/// under the given noise: rounds are iterated until fidelity stops
/// improving.
pub fn max_achievable(
    protocol: Protocol,
    initial: BellDiagonal,
    noise: &RoundNoise,
) -> BellDiagonal {
    let mut state = initial;
    let mut best = state;
    for _ in 0..500 {
        state = protocol.noisy_step(&state, noise).state;
        if state.fidelity().value() <= best.fidelity().value() + 1e-15 {
            return best;
        }
        best = state;
    }
    best
}

/// Expected raw input pairs consumed to produce one output pair after
/// `rounds` rounds of tree purification from `initial` (the `∏ 2/pᵢ`
/// count). Returns the pair count and the final state.
pub fn pairs_for_rounds(
    protocol: Protocol,
    initial: BellDiagonal,
    rounds: u32,
    noise: &RoundNoise,
) -> (f64, BellDiagonal) {
    let traj = trajectory(protocol, initial, rounds, noise);
    let last = traj.last().expect("trajectory is never empty");
    (last.expected_pairs, last.state)
}

/// One series of Figure 8: error (1 − fidelity) of the surviving pair as a
/// function of rounds performed, for a given protocol and initial fidelity.
pub fn figure8_series(
    protocol: Protocol,
    initial_fidelity: f64,
    rounds: u32,
    noise: &RoundNoise,
) -> Vec<(u32, f64)> {
    let initial = BellDiagonal::werner_f64(initial_fidelity.clamp(0.0, 1.0))
        .expect("clamped fidelity is valid");
    trajectory(protocol, initial, rounds, noise)
        .into_iter()
        .map(|p| (p.round, p.state.error()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_shape() {
        let noise = RoundNoise::noiseless();
        let t = trajectory(
            Protocol::Dejmps,
            BellDiagonal::werner_f64(0.95).unwrap(),
            5,
            &noise,
        );
        assert_eq!(t.len(), 6);
        assert_eq!(t[0].round, 0);
        assert_eq!(t[0].expected_pairs, 1.0);
        // Fidelity improves monotonically without noise (above F=1/2).
        for w in t.windows(2) {
            assert!(w[1].state.fidelity() >= w[0].state.fidelity());
            assert!(w[1].expected_pairs > w[0].expected_pairs * 2.0 - 1e-9);
        }
    }

    #[test]
    fn rounds_to_reach_matches_trajectory() {
        let noise = RoundNoise::ion_trap();
        let init = BellDiagonal::werner_f64(0.99).unwrap();
        let r = rounds_to_reach(Protocol::Dejmps, init, 7.5e-5, &noise, 20).unwrap();
        let t = trajectory(Protocol::Dejmps, init, r, &noise);
        assert!(t.last().unwrap().state.error() <= 7.5e-5);
        if r > 0 {
            assert!(t[r as usize - 1].state.error() > 7.5e-5);
        }
    }

    #[test]
    fn paper_simulation_uses_three_rounds() {
        // §5.3: distances under consideration need a purification tree of
        // depth three. Check: worst-case 16×16 route (~30 hops × ~3e-4
        // per-hop link error) reaches threshold in ≤ 3 DEJMPS rounds.
        let noise = RoundNoise::ion_trap();
        let worst = BellDiagonal::werner_f64(1.0 - 30.0 * 3.0e-4).unwrap();
        let r = rounds_to_reach(Protocol::Dejmps, worst, 7.5e-5, &noise, 10).unwrap();
        assert!(r <= 3, "expected ≤3 rounds, got {r}");
        assert!(r >= 2, "a degraded channel needs ≥2 rounds, got {r}");
    }

    #[test]
    fn unreachable_target_returns_none() {
        let noise = RoundNoise::ion_trap();
        let init = BellDiagonal::werner_f64(0.99).unwrap();
        // Below the hardware floor: unreachable.
        assert_eq!(
            rounds_to_reach(Protocol::Dejmps, init, 1e-12, &noise, 200),
            None
        );
        // Unentangled input: unreachable.
        let bad = BellDiagonal::werner_f64(0.4).unwrap();
        assert_eq!(
            rounds_to_reach(Protocol::Dejmps, bad, 7.5e-5, &noise, 200),
            None
        );
    }

    #[test]
    fn already_good_needs_zero_rounds() {
        let noise = RoundNoise::ion_trap();
        let init = BellDiagonal::werner_f64(0.99999).unwrap();
        assert_eq!(
            rounds_to_reach(Protocol::Dejmps, init, 7.5e-5, &noise, 20),
            Some(0)
        );
    }

    #[test]
    fn max_achievable_beats_threshold_at_table2_rates() {
        let noise = RoundNoise::ion_trap();
        let init = BellDiagonal::werner_f64(0.99).unwrap();
        for protocol in Protocol::ALL {
            let best = max_achievable(protocol, init, &noise);
            assert!(
                best.error() < 7.5e-5,
                "{protocol} floor {} must beat the threshold",
                best.error()
            );
        }
    }

    #[test]
    fn max_achievable_fails_at_high_error_rates() {
        // Figure 12: near uniform op error 1e-5 the distribution network
        // breaks down — purification can no longer reach the threshold.
        let rates = qic_physics::error::ErrorRates::uniform(3e-5).unwrap();
        let noise = RoundNoise::from_rates(&rates);
        let init = BellDiagonal::werner_f64(0.99).unwrap();
        let best = max_achievable(Protocol::Dejmps, init, &noise);
        assert!(
            best.error() > 7.5e-5,
            "floor {} should exceed threshold",
            best.error()
        );
    }

    #[test]
    fn pairs_grow_exponentially_with_rounds() {
        let noise = RoundNoise::noiseless();
        let init = BellDiagonal::werner_f64(0.99).unwrap();
        let (p3, _) = pairs_for_rounds(Protocol::Dejmps, init, 3, &noise);
        let (p6, _) = pairs_for_rounds(Protocol::Dejmps, init, 6, &noise);
        // Slightly more than 2^r because success probability < 1.
        assert!(p3 >= 8.0);
        assert!(p3 < 10.0);
        assert!(p6 >= 64.0);
        assert!(p6 / p3 > 7.9, "each extra round at least doubles cost");
    }

    #[test]
    fn figure8_series_shape() {
        let noise = RoundNoise::ion_trap();
        for f0 in [0.99, 0.999, 0.9999] {
            let dej = figure8_series(Protocol::Dejmps, f0, 25, &noise);
            let bbp = figure8_series(Protocol::Bbpssw, f0, 25, &noise);
            assert_eq!(dej.len(), 26);
            assert_eq!(dej[0].1, bbp[0].1, "same starting error");
            // DEJMPS is at or below BBPSSW at every round (lower is better).
            for (d, b) in dej.iter().zip(&bbp) {
                assert!(d.1 <= b.1 + 1e-12, "round {}: {} vs {}", d.0, d.1, b.1);
            }
            // DEJMPS converges within ~5 rounds: round-5 error within 2x of
            // round-25 error.
            assert!(dej[5].1 <= dej[25].1 * 2.0 + 1e-12);
        }
    }
}
