//! Entanglement purification for the `qic` quantum-interconnect simulator.
//!
//! Purification combines two noisy EPR pairs with local operations and
//! classical communication to produce (probabilistically) one pair of
//! higher fidelity (Section 4.5 of Isailovic et al., ISCA 2006). This crate
//! implements:
//!
//! * [`protocol`] — the DEJMPS and BBPSSW recurrence protocols and Dür-style
//!   entanglement pumping, in ideal and noisy variants,
//! * [`frame`] — an independent Pauli-frame simulation of the bilateral-CNOT
//!   purification circuit, used to *derive* (and in tests, validate) the
//!   closed-form recurrences,
//! * [`analysis`] — round trajectories, convergence and resource counts
//!   behind Figure 8,
//! * [`tree`] — spatial tree purifiers (one hardware unit per tree node),
//! * [`queue`] — the robust queue purifiers of Figure 14 that the
//!   event-driven simulator instantiates at endpoints.
//!
//! # Example
//!
//! ```
//! use qic_physics::bell::BellDiagonal;
//! use qic_purify::prelude::*;
//!
//! // Three noisy DEJMPS rounds clean a 0.99-fidelity pair by ~3 orders of
//! // magnitude.
//! let noise = RoundNoise::ion_trap();
//! let start = BellDiagonal::werner_f64(0.99)?;
//! let traj = trajectory(Protocol::Dejmps, start, 3, &noise);
//! assert!(traj.last().unwrap().state.error() < 1e-4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod frame;
pub mod protocol;
pub mod queue;
pub mod tree;

/// Convenient glob-import surface: `use qic_purify::prelude::*;`.
pub mod prelude {
    pub use crate::analysis::{
        max_achievable, pairs_for_rounds, rounds_to_reach, trajectory, RoundPoint,
    };
    pub use crate::protocol::{Protocol, PurifyOutcome, RoundNoise};
    pub use crate::queue::QueuePurifier;
    pub use crate::tree::TreePurifier;
}

pub use analysis::{max_achievable, rounds_to_reach, trajectory};
pub use protocol::{Protocol, PurifyOutcome, RoundNoise};
pub use queue::QueuePurifier;
pub use tree::TreePurifier;
