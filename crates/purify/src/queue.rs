//! Queue purifiers — **Figure 14 and Section 5.1**.
//!
//! The robust alternative to hardware trees: a depth-`n` queue purifier
//! has `n` purifier units, one per tree *level*. Incoming raw pairs are
//! purified at level `L0`; a survivor waits there until a second survivor
//! arrives, the two are purified, and the product is promoted to `L1`, and
//! so on. Advantages (Section 5.1):
//!
//! 1. depth `n` costs `n` purifiers instead of `2ⁿ − 1`;
//! 2. movement between levels is minimal;
//! 3. failed purifications need no special handling — the lost subtree is
//!    rebuilt by the continuing input stream.
//!
//! The drawback is latency: purifications at a level are serialised.
//!
//! Two evaluation modes are provided: an *expected-flow* model (used by the
//! analytical resource counts) and a *stochastic* mode driven by an
//! external RNG (used by the event-driven simulator, which also charges
//! queue time).

use serde::{Deserialize, Serialize};

use qic_physics::bell::BellDiagonal;
use qic_physics::optime::OpTimes;
use qic_physics::time::Duration;

use crate::protocol::{Protocol, RoundNoise};

/// What happened when a pair was fed into a [`QueuePurifier`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FeedResult {
    /// The pair is parked at some level, waiting for a partner.
    Stored {
        /// The level (0-based) at which the pair is now waiting.
        level: u32,
    },
    /// The pair reached the top of the queue: a fully purified output.
    Output {
        /// The delivered state.
        state: BellDiagonal,
        /// Purification operations performed along this pair's cascade.
        ops: u32,
    },
    /// A purification along the cascade failed; both participants were
    /// discarded.
    Discarded {
        /// The level at which the failure happened.
        level: u32,
        /// Purification operations performed before the failure.
        ops: u32,
    },
}

/// Running statistics for a queue purifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QueueStats {
    /// Raw pairs fed in.
    pub pairs_in: u64,
    /// Purified pairs delivered.
    pub pairs_out: u64,
    /// Individual purification operations performed.
    pub operations: u64,
    /// Purification operations that failed.
    pub failures: u64,
}

/// A depth-`n` queue purifier (Figure 14).
///
/// # Example
///
/// ```
/// use qic_physics::bell::BellDiagonal;
/// use qic_purify::prelude::*;
///
/// let mut q = QueuePurifier::new(3, Protocol::Dejmps, RoundNoise::ion_trap());
/// let raw = BellDiagonal::werner_f64(0.995)?;
/// // Expected-flow mode: 8 raw pairs produce exactly one depth-3 output.
/// let mut outputs = 0;
/// for _ in 0..8 {
///     if q.feed_expected(raw).is_some() { outputs += 1; }
/// }
/// assert_eq!(outputs, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueuePurifier {
    protocol: Protocol,
    noise: RoundNoise,
    /// One slot per level: a pair waiting for its partner.
    levels: Vec<Option<BellDiagonal>>,
    stats: QueueStats,
}

impl QueuePurifier {
    /// Creates a queue purifier with `depth` levels.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: u32, protocol: Protocol, noise: RoundNoise) -> Self {
        assert!(depth > 0, "queue purifier needs at least one level");
        QueuePurifier {
            protocol,
            noise,
            levels: vec![None; depth as usize],
            stats: QueueStats::default(),
        }
    }

    /// Queue depth (purification rounds applied to every output).
    pub fn depth(&self) -> u32 {
        self.levels.len() as u32
    }

    /// The protocol used at every level.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Pairs currently parked in the queue.
    pub fn occupancy(&self) -> usize {
        self.levels.iter().filter(|l| l.is_some()).count()
    }

    /// Drops all parked pairs (e.g. when a channel is torn down).
    pub fn clear(&mut self) {
        for l in &mut self.levels {
            *l = None;
        }
    }

    /// Feeds one raw pair in **stochastic** mode: each purification
    /// succeeds with its true probability, decided by `coin` (a closure
    /// returning a uniform `[0,1)` sample, so the caller owns determinism).
    pub fn feed_with(&mut self, pair: BellDiagonal, mut coin: impl FnMut() -> f64) -> FeedResult {
        self.stats.pairs_in += 1;
        let mut carried = pair;
        let mut ops = 0;
        for level in 0..self.levels.len() {
            match self.levels[level].take() {
                None => {
                    self.levels[level] = Some(carried);
                    return FeedResult::Stored {
                        level: level as u32,
                    };
                }
                Some(waiting) => {
                    let out = self
                        .protocol
                        .noisy_step_asymmetric(&waiting, &carried, &self.noise);
                    self.stats.operations += 1;
                    ops += 1;
                    if coin() < out.success_prob {
                        carried = out.state;
                        // Promoted: continue cascading at the next level.
                    } else {
                        self.stats.failures += 1;
                        return FeedResult::Discarded {
                            level: level as u32,
                            ops,
                        };
                    }
                }
            }
        }
        self.stats.pairs_out += 1;
        FeedResult::Output {
            state: carried,
            ops,
        }
    }

    /// Feeds one raw pair in **expected-flow** mode: every purification
    /// "succeeds" and delivers the success-conditioned state, so exactly
    /// `2^depth` inputs yield one output. Failure accounting is handled
    /// analytically by the resource models instead. Returns the output
    /// state when the cascade completes.
    pub fn feed_expected(&mut self, pair: BellDiagonal) -> Option<BellDiagonal> {
        match self.feed_with(pair, || 0.0) {
            FeedResult::Output { state, .. } => Some(state),
            _ => None,
        }
    }

    /// Latency of one purification operation when the channel endpoints
    /// are `cells` apart (Equation 6).
    pub fn op_latency(&self, times: &OpTimes, cells: u64) -> Duration {
        times.purify_round(cells)
    }

    /// Expected raw pairs per delivered output, accounting for failures:
    /// `∏ᵢ 2/pᵢ` with `pᵢ` evaluated along the success-conditioned
    /// trajectory of `input`.
    pub fn expected_pairs_per_output(&self, input: &BellDiagonal) -> f64 {
        crate::analysis::trajectory(self.protocol, *input, self.depth(), &self.noise)
            .last()
            .map(|p| p.expected_pairs)
            .unwrap_or(f64::INFINITY)
    }

    /// Serial-latency model for one output: with a single queue purifier,
    /// producing one depth-`n` output requires `2^n − 1` sequential
    /// purification operations on the same hardware (Section 5.1's "latency
    /// penalty").
    pub fn serial_latency_per_output(&self, times: &OpTimes, cells: u64) -> Duration {
        let ops = (1u64 << self.depth()) - 1;
        self.op_latency(times, cells) * ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw() -> BellDiagonal {
        BellDiagonal::werner_f64(0.995).unwrap()
    }

    #[test]
    fn expected_flow_produces_one_output_per_2n_inputs() {
        let mut q = QueuePurifier::new(3, Protocol::Dejmps, RoundNoise::ion_trap());
        let mut outputs = Vec::new();
        for _ in 0..32 {
            if let Some(out) = q.feed_expected(raw()) {
                outputs.push(out);
            }
        }
        assert_eq!(outputs.len(), 4, "32 inputs / 2^3 = 4 outputs");
        assert_eq!(q.stats().pairs_in, 32);
        assert_eq!(q.stats().pairs_out, 4);
        // Each output went through 3 rounds.
        let expect =
            crate::analysis::trajectory(Protocol::Dejmps, raw(), 3, &RoundNoise::ion_trap())[3]
                .state;
        for out in outputs {
            assert!(out.approx_eq(&expect, 1e-12));
        }
    }

    #[test]
    fn occupancy_tracks_binary_counter() {
        // The queue's occupancy pattern follows the binary representation
        // of the number of pairs fed (like a carry chain).
        let mut q = QueuePurifier::new(4, Protocol::Dejmps, RoundNoise::noiseless());
        for fed in 1..=15u32 {
            let _ = q.feed_expected(raw());
            assert_eq!(
                q.occupancy(),
                fed.count_ones() as usize,
                "after {fed} pairs"
            );
        }
    }

    #[test]
    fn stochastic_mode_discards_on_failure() {
        let mut q = QueuePurifier::new(2, Protocol::Dejmps, RoundNoise::ion_trap());
        // First pair stores at L0.
        assert!(matches!(
            q.feed_with(raw(), || 0.0),
            FeedResult::Stored { level: 0 }
        ));
        // Coin of 1.0 ≥ p: the purification fails, both pairs discarded.
        let r = q.feed_with(raw(), || 1.0);
        assert!(
            matches!(r, FeedResult::Discarded { level: 0, ops: 1 }),
            "{r:?}"
        );
        assert_eq!(q.occupancy(), 0, "failure empties the level");
        assert_eq!(q.stats().failures, 1);
        // The stream rebuilds naturally (Section 5.1 advantage #3).
        assert!(matches!(
            q.feed_with(raw(), || 0.0),
            FeedResult::Stored { level: 0 }
        ));
        assert!(matches!(
            q.feed_with(raw(), || 0.0),
            FeedResult::Stored { level: 1 }
        ));
    }

    #[test]
    fn output_reports_cascade_ops() {
        let mut q = QueuePurifier::new(3, Protocol::Dejmps, RoundNoise::noiseless());
        let mut last = None;
        for _ in 0..8 {
            last = Some(q.feed_with(raw(), || 0.0));
        }
        // The 8th pair cascades through all 3 levels.
        match last.unwrap() {
            FeedResult::Output { ops, .. } => assert_eq!(ops, 3),
            other => panic!("expected output, got {other:?}"),
        }
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = QueuePurifier::new(3, Protocol::Dejmps, RoundNoise::noiseless());
        for _ in 0..5 {
            let _ = q.feed_expected(raw());
        }
        assert!(q.occupancy() > 0);
        q.clear();
        assert_eq!(q.occupancy(), 0);
    }

    #[test]
    fn hardware_advantage_over_tree() {
        // Depth n: n purifiers vs 2^n − 1 (Section 5.1 advantage #1).
        let q = QueuePurifier::new(5, Protocol::Dejmps, RoundNoise::noiseless());
        let t = crate::tree::TreePurifier::new(5, Protocol::Dejmps);
        assert_eq!(q.depth() as u64, 5);
        assert_eq!(t.hardware_units(), 31);
    }

    #[test]
    fn serial_latency_penalty() {
        // Section 5.1 drawback: one queue output needs 2^n − 1 serialised
        // ops, vs n parallel levels for the tree.
        let times = OpTimes::ion_trap();
        let q = QueuePurifier::new(3, Protocol::Dejmps, RoundNoise::noiseless());
        let t = crate::tree::TreePurifier::new(3, Protocol::Dejmps);
        assert!(q.serial_latency_per_output(&times, 0) > t.latency(&times, 0));
        assert_eq!(
            q.serial_latency_per_output(&times, 0),
            times.purify_round_local() * 7
        );
    }

    #[test]
    fn expected_pairs_accounts_for_failures() {
        let q = QueuePurifier::new(3, Protocol::Dejmps, RoundNoise::ion_trap());
        let n = q.expected_pairs_per_output(&raw());
        assert!(n > 8.0, "failures push the cost above 2^3");
        assert!(n < 10.0);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_depth_rejected() {
        let _ = QueuePurifier::new(0, Protocol::Dejmps, RoundNoise::noiseless());
    }
}
