//! Pauli-frame simulation of the purification circuit (Figure 7).
//!
//! The purification hardware applies, at *both* endpoints: optional local
//! pre-rotations, a CNOT from the kept pair's qubit onto the sacrificed
//! pair's qubit, and a measurement of the sacrificed qubit; the endpoints
//! keep the pair iff their classical bits agree.
//!
//! Because Bell-diagonal states are classical mixtures of Pauli frames,
//! this whole circuit can be simulated *exactly* by enumerating the 16
//! combinations of input frames and tracking how the bilateral CNOT
//! propagates X and Z labels:
//!
//! * X on the control (kept) half copies onto the target (sacrificed) half,
//! * Z on the target half copies back onto the control half,
//!
//! so frames `(x₁,z₁),(x₂,z₂)` map to `(x₁, z₁⊕z₂), (x₁⊕x₂, z₂)`, and the
//! endpoint measurements agree iff `x₁⊕x₂ = 0`.
//!
//! This module is an independent derivation of the closed-form recurrences
//! in [`crate::protocol`]; the test suites of both modules cross-check
//! them against each other — a bug would have to be made twice, in two
//! different formalisms, to go unnoticed.

use qic_physics::bell::{BellDiagonal, BellState};

use crate::protocol::PurifyOutcome;

/// How each endpoint pre-rotates its qubits before the bilateral CNOT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PreRotation {
    /// No pre-rotation (the BBPSSW circuit, which instead relies on
    /// twirled/Werner inputs).
    None,
    /// The DEJMPS `Rx(π/2)` / `Rx(−π/2)` bilateral rotation, which swaps
    /// the `Ψ⁻` and `Φ⁻` weights of each pair's frame distribution.
    Dejmps,
}

fn rotate(state: &BellDiagonal, r: PreRotation) -> BellDiagonal {
    match r {
        PreRotation::None => *state,
        PreRotation::Dejmps => state.dejmps_rotate(),
    }
}

/// Simulates one bilateral-CNOT purification attempt by exhaustive
/// Pauli-frame enumeration.
///
/// `kept` is the control pair (it survives a successful round);
/// `sacrificed` is the target pair (it is measured and destroyed). The
/// output state is conditioned on success.
pub fn simulate(kept: &BellDiagonal, sacrificed: &BellDiagonal, pre: PreRotation) -> PurifyOutcome {
    let kept = rotate(kept, pre);
    let sacrificed = rotate(sacrificed, pre);

    let mut out = [0.0f64; 4];
    let mut success = 0.0f64;
    for s1 in BellState::ALL {
        let (x1, z1) = s1.pauli_label();
        let p1 = kept.coeff(s1);
        for s2 in BellState::ALL {
            let (x2, z2) = s2.pauli_label();
            let p = p1 * sacrificed.coeff(s2);
            // Bilateral CNOT frame propagation.
            let kept_after = (x1, z1 ^ z2);
            let sac_x_after = x1 ^ x2;
            // Endpoint Z-measurements of the sacrificed pair agree iff its
            // X frame is trivial.
            if !sac_x_after {
                success += p;
                let s = BellState::from_pauli_label(kept_after.0, kept_after.1);
                out[s as usize] += p;
            }
        }
    }

    if success <= f64::EPSILON {
        return PurifyOutcome {
            state: BellDiagonal::maximally_mixed(),
            success_prob: 0.0,
        };
    }
    for c in &mut out {
        *c /= success;
    }
    PurifyOutcome {
        state: BellDiagonal::new(out).expect("conditioned frame weights form a distribution"),
        success_prob: success,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Protocol;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn frame_simulation_matches_dejmps_recurrence() {
        let states = [
            BellDiagonal::werner_f64(0.9).unwrap(),
            BellDiagonal::new([0.7, 0.1, 0.15, 0.05]).unwrap(),
            BellDiagonal::new([0.85, 0.0, 0.05, 0.1]).unwrap(),
        ];
        for s in &states {
            let sim = simulate(s, s, PreRotation::Dejmps);
            let formula = Protocol::Dejmps.step(s);
            assert!(
                sim.state.approx_eq(&formula.state, 1e-12),
                "state {} vs {}",
                sim.state,
                formula.state
            );
            assert!(close(sim.success_prob, formula.success_prob));
        }
    }

    #[test]
    fn frame_simulation_matches_dejmps_asymmetric() {
        let a = BellDiagonal::new([0.8, 0.05, 0.1, 0.05]).unwrap();
        let b = BellDiagonal::new([0.9, 0.02, 0.05, 0.03]).unwrap();
        let sim = simulate(&a, &b, PreRotation::Dejmps);
        let formula = Protocol::Dejmps.step_asymmetric(&a, &b);
        assert!(sim.state.approx_eq(&formula.state, 1e-12));
        assert!(close(sim.success_prob, formula.success_prob));
    }

    #[test]
    fn frame_simulation_matches_bbpssw_on_werner_inputs() {
        // BBPSSW = bare bilateral CNOT on Werner states + final twirl.
        let w = BellDiagonal::werner_f64(0.87).unwrap();
        let sim = simulate(&w, &w, PreRotation::None);
        let formula = Protocol::Bbpssw.step(&w);
        assert!(close(
            sim.state.fidelity().value(),
            formula.state.fidelity().value()
        ));
        assert!(close(sim.success_prob, formula.success_prob));
        // The simulated survivor is not Werner before the twirl…
        assert!(!sim.state.approx_eq(&formula.state, 1e-12));
        // …but twirling it reproduces the BBPSSW output exactly.
        assert!(sim.state.twirl().approx_eq(&formula.state, 1e-12));
    }

    #[test]
    fn perfect_inputs_always_succeed() {
        let p = BellDiagonal::perfect();
        for pre in [PreRotation::None, PreRotation::Dejmps] {
            let out = simulate(&p, &p, pre);
            assert!(close(out.success_prob, 1.0));
            assert!(out.state.approx_eq(&p, 1e-12));
        }
    }

    #[test]
    fn pure_x_error_on_sacrificed_pair_is_always_caught() {
        // A Ψ⁺ (X-frame) sacrificed pair flips the parity of the endpoint
        // measurements: without pre-rotation the round must always fail...
        let kept = BellDiagonal::perfect();
        let bad = BellDiagonal::new([0.0, 0.0, 1.0, 0.0]).unwrap();
        let out = simulate(&kept, &bad, PreRotation::None);
        assert!(close(out.success_prob, 0.0));
    }

    #[test]
    fn pure_z_error_on_sacrificed_pair_escapes_detection() {
        // ...while a Φ⁻ (Z-frame) error is invisible to the measurement and
        // instead contaminates the kept pair: this is exactly why DEJMPS
        // pre-rotates (swapping Z-heavy weight into the detectable frame).
        let kept = BellDiagonal::perfect();
        let bad = BellDiagonal::new([0.0, 0.0, 0.0, 1.0]).unwrap();
        let out = simulate(&kept, &bad, PreRotation::None);
        assert!(close(out.success_prob, 1.0), "Z error goes undetected");
        assert!(
            close(out.state.coeff(BellState::PhiMinus), 1.0),
            "and lands on the kept pair"
        );
        // With the DEJMPS rotation the same error becomes detectable.
        let out = simulate(&kept, &bad, PreRotation::Dejmps);
        assert!(close(out.success_prob, 0.0));
    }

    #[test]
    fn maximally_mixed_input_succeeds_half_the_time() {
        let m = BellDiagonal::maximally_mixed();
        let out = simulate(&m, &m, PreRotation::Dejmps);
        assert!(close(out.success_prob, 0.5));
        assert!(out.state.approx_eq(&m, 1e-12), "mixed stays mixed");
    }
}
