//! Property-based tests for the composed two-tier fabric: route
//! minimality/loop-freedom/determinism over every base fabric and both
//! routing policies, metric laws for the BFS distance table, and
//! hand-computed diameter/bisection values for small module counts.

use proptest::prelude::*;

use qic_modular::{Interconnect, ModularFabric, ModularSpec};
use qic_net::routing::RoutingPolicy;
use qic_net::topology::{Fabric, Hypercube, Mesh, Topology, Torus};

/// A composing spec with a nonzero inter tier (so the penalty and slot
/// paths are live) at `k` modules.
fn spec(k: u32, fat: bool) -> ModularSpec {
    let interconnect = if fat {
        Interconnect::FatTree { radix: 2 }
    } else {
        Interconnect::OpticalSwitch
    };
    ModularSpec::single()
        .with_modules(k)
        .with_interconnect(interconnect)
        .with_latency_ns(250)
        .with_teleporter_slots(2)
}

/// The three composed fabrics at a `w × h`-ish module scale.
fn composed(w: u16, h: u16, k: u32, fat: bool) -> Vec<ModularFabric<Fabric>> {
    let dim = (usize::from(w) * usize::from(h)).ilog2().clamp(1, 5);
    vec![
        Fabric::Mesh(Mesh::new(w, h)),
        Fabric::Torus(Torus::new(w, h)),
        Fabric::Hypercube(Hypercube::new(dim)),
    ]
    .into_iter()
    .map(|base| ModularFabric::new(base, &spec(k, fat)))
    .collect()
}

proptest! {
    #[test]
    fn routes_are_minimal_loop_free_and_deterministic(
        w in 2u16..5, h in 2u16..5, k in 1u32..5, fat in any::<bool>(),
        a in 0usize..10_000, b in 0usize..10_000,
        fake_load in proptest::collection::vec(0u32..7, 64),
    ) {
        for topo in composed(w, h, k, fat) {
            let n = topo.nodes();
            let (src, dst) = (a % n, b % n);
            let load = |link: usize| fake_load[link % fake_load.len()];
            for policy in RoutingPolicy::ALL {
                let router = policy.router();
                let path = router.route(&topo, src, dst, &load);
                // Minimal: length equals the BFS distance table.
                prop_assert_eq!(
                    path.len() as u32,
                    topo.distance(src, dst),
                    "{} over {} modules", policy, k
                );
                // Loop-free: no node repeats, and the walk ends at dst.
                let mut at = src;
                let mut seen = std::collections::HashSet::from([at]);
                let mut crossings = 0u32;
                for &port in &path {
                    let next = topo.neighbor(at, port).expect("wired");
                    if topo.module_of(next) != topo.module_of(at) {
                        crossings += 1;
                    }
                    at = next;
                    prop_assert!(seen.insert(at), "revisited node {at}");
                }
                prop_assert_eq!(at, dst);
                // Two modules have a single inter link, so minimality
                // at the module-graph level is exact: one crossing for
                // cross-module pairs, none within a module. (Larger K
                // may legitimately shortcut through a third module.)
                if k == 2 {
                    let cross = topo.module_of(src) != topo.module_of(dst);
                    prop_assert_eq!(crossings, u32::from(cross));
                }
                // Deterministic: same inputs, same route.
                prop_assert_eq!(path, router.route(&topo, src, dst, &load));
            }
        }
    }

    #[test]
    fn distances_are_metrics(
        w in 2u16..5, h in 2u16..5, k in 1u32..6,
        a in 0usize..10_000, b in 0usize..10_000, c in 0usize..10_000,
    ) {
        for topo in composed(w, h, k, false) {
            let n = topo.nodes();
            let (x, y, z) = (a % n, b % n, c % n);
            prop_assert_eq!(topo.distance(x, x), 0);
            prop_assert_eq!(topo.distance(x, y), topo.distance(y, x));
            prop_assert!(x == y || topo.distance(x, y) > 0);
            prop_assert!(
                topo.distance(x, z) <= topo.distance(x, y) + topo.distance(y, z),
                "triangle inequality over {k} modules"
            );
            prop_assert!(topo.distance(x, y) <= topo.diameter());
        }
    }

    #[test]
    fn min_ports_decrease_distance(
        w in 2u16..5, h in 2u16..5, k in 1u32..5, fat in any::<bool>(),
        a in 0usize..10_000, b in 0usize..10_000,
    ) {
        for topo in composed(w, h, k, fat) {
            let n = topo.nodes();
            let (src, dst) = (a % n, b % n);
            let ports = topo.min_ports(src, dst);
            prop_assert_eq!(ports.is_empty(), src == dst);
            let d = topo.distance(src, dst);
            for port in ports {
                let next = topo.neighbor(src, port).expect("minimal ports are wired");
                prop_assert_eq!(topo.distance(next, dst), d - 1);
            }
        }
    }

    #[test]
    fn degenerate_composition_is_transparent(
        w in 2u16..6, h in 2u16..6,
        a in 0usize..10_000, b in 0usize..10_000,
    ) {
        // One module: every Topology answer must match the bare base.
        let base = Fabric::Mesh(Mesh::new(w, h));
        let one = ModularFabric::new(base, &spec(1, false));
        let n = base.nodes();
        let (x, y) = (a % n, b % n);
        prop_assert_eq!(one.nodes(), n);
        prop_assert_eq!(one.distance(x, y), base.distance(x, y));
        prop_assert_eq!(one.min_ports(x, y), base.min_ports(x, y));
        prop_assert_eq!(one.diameter(), base.diameter());
        prop_assert_eq!(one.bisection_width(), base.bisection_width());
        prop_assert_eq!(one.teleporter_capacity(x, 7), base.teleporter_capacity(x, 7));
    }
}

/// Two 2×2-mesh modules: the single inter link joins module 0's local 1
/// to module 1's local 0, so the worst pair walks 2 hops to the
/// gateway, crosses once, and walks 2 hops out: diameter 5. The best
/// balanced bisection cuts the one inter link.
#[test]
fn hand_computed_two_module_mesh() {
    let two = ModularFabric::new(Fabric::Mesh(Mesh::new(2, 2)), &spec(2, false));
    assert_eq!(two.nodes(), 8);
    assert_eq!(two.links(), 2 * 4 + 1);
    assert_eq!(two.diameter(), 5);
    assert_eq!(two.bisection_width(), 1);
    // The worst pair itself: module 0's local 2 to module 1's local 3.
    assert_eq!(two.distance(2, 4 + 3), 5);
}

/// Two 8-node hypercube modules: 3 hops in, one crossing, 3 hops out.
#[test]
fn hand_computed_two_module_hypercube() {
    let two = ModularFabric::new(Fabric::Hypercube(Hypercube::new(3)), &spec(2, false));
    assert_eq!(two.nodes(), 16);
    assert_eq!(two.diameter(), 3 + 1 + 3);
    // The base's bisection (4) doubled still beats the single uplink.
    assert_eq!(two.bisection_width(), 1);
}

/// Three and four modules: the module-graph cut `⌊k/2⌋·⌈k/2⌉` governs
/// until the tiled base cut is smaller.
#[test]
fn hand_computed_bisection_growth() {
    let base = Fabric::Mesh(Mesh::new(2, 2));
    assert_eq!(
        ModularFabric::new(base, &spec(3, false)).bisection_width(),
        2
    );
    assert_eq!(
        ModularFabric::new(base, &spec(4, false)).bisection_width(),
        4
    );
}
