//! # qic-modular — hierarchical multi-module fabrics
//!
//! The ISCA 2006 paper models one chip: a single grid of teleporter
//! nodes. A scalable machine is built from **K** such modules joined by
//! a second interconnect tier — an optical crossbar switch between
//! trapped-ion ELUs (Monroe et al., arXiv:1208.0391) or a switched
//! fat-tree between QPU dies (Escofet et al., arXiv:2309.07313). This
//! crate composes that two-level machine out of the existing flat
//! fabrics without touching the simulator:
//!
//! * [`ModularFabric`] tiles K identical copies of any base
//!   [`Topology`] (mesh / torus / hypercube) side by side and wires
//!   each unordered module pair through one inter-module link, exposed
//!   as one extra port class. Routing, bubble flow control, fault
//!   masking and probes all operate on the composed [`Topology`]
//!   unchanged.
//! * [`Interconnect`] picks the inter-module tier technology; it scales
//!   the tier's latency, fidelity exponent and component cost.
//! * [`LinkParams`] carries the per-tier physical knobs (latency,
//!   teleporter slots, per-crossing fidelity).
//! * [`ModularSpec`] is the plain-data description the scenario layer
//!   embeds in a machine spec.
//!
//! The degenerate case is load-bearing: `ModularFabric` with one module
//! delegates every trait method to its base fabric, so a K=1 composed
//! machine reproduces the flat machine **byte for byte**.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use qic_net::topology::{Coord, Port, Topology};
use serde::{Deserialize, Serialize};

/// The inter-module tier technology.
///
/// Both variants present the same module-level wiring (a link per
/// module pair); they differ in how many switch stages one crossing
/// traverses, which scales the tier's latency, its fidelity exponent
/// and its component cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Interconnect {
    /// One non-blocking optical crossbar: every crossing traverses a
    /// single switch stage (the MUSIQC-style ELU interconnect).
    OpticalSwitch,
    /// A fat tree of `radix`-port switches: a crossing climbs
    /// `ceil(log_radix K)` stages up and the same number down.
    FatTree {
        /// Ports per switch (≥ 2).
        radix: u32,
    },
}

impl Interconnect {
    /// Switch stages one inter-module crossing traverses.
    ///
    /// The optical crossbar is a single stage; a fat tree pays
    /// `2 · ceil(log_radix K)` stages (up then down). This factor
    /// multiplies both the tier latency and the per-crossing fidelity
    /// exponent.
    pub fn tier_hops(&self, modules: usize) -> u32 {
        match *self {
            Interconnect::OpticalSwitch => 1,
            Interconnect::FatTree { radix } => {
                let r = (radix.max(2)) as usize;
                let mut depth = 1u32;
                let mut reach = r;
                while reach < modules {
                    reach = reach.saturating_mul(r);
                    depth += 1;
                }
                2 * depth
            }
        }
    }

    /// Switch ports the tier needs for `modules` modules (a component
    /// count for the cost model; documented approximation for the fat
    /// tree: each of its `tier_hops / 2` stages contributes an up and a
    /// down port per module).
    pub fn switch_ports(&self, modules: usize) -> usize {
        match *self {
            Interconnect::OpticalSwitch => modules,
            Interconnect::FatTree { .. } => modules * self.tier_hops(modules) as usize,
        }
    }

    /// Stable label for reports and JSON (`optical_switch`,
    /// `fat_tree:RADIX`).
    pub fn label(&self) -> String {
        match *self {
            Interconnect::OpticalSwitch => "optical_switch".to_string(),
            Interconnect::FatTree { radix } => format!("fat_tree:{radix}"),
        }
    }

    /// Parses a [`Interconnect::label`] string.
    pub fn parse(s: &str) -> Option<Interconnect> {
        if s == "optical_switch" {
            return Some(Interconnect::OpticalSwitch);
        }
        let radix = s.strip_prefix("fat_tree:")?.parse::<u32>().ok()?;
        Some(Interconnect::FatTree { radix })
    }
}

/// Physical parameters of one interconnect tier's links.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Extra service nanoseconds a hop over this tier pays (per switch
    /// stage; see [`Interconnect::tier_hops`]).
    pub latency_ns: u64,
    /// Teleporter slots each link endpoint contributes to its gateway
    /// node's pool.
    pub teleporter_slots: u32,
    /// Fidelity retained per crossing of one stage of this tier, in
    /// `(0, 1]`.
    pub fidelity: f64,
}

impl LinkParams {
    /// A free, perfect tier: zero latency, one slot, unit fidelity.
    /// The K=1 byte-identity guarantee assumes this inter tier.
    pub fn ideal() -> LinkParams {
        LinkParams {
            latency_ns: 0,
            teleporter_slots: 1,
            fidelity: 1.0,
        }
    }
}

impl Default for LinkParams {
    fn default() -> LinkParams {
        LinkParams::ideal()
    }
}

/// Plain-data description of a modular machine: how many modules, the
/// inter-module tier, and the cost/fidelity knobs the scenario layer
/// turns into report columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModularSpec {
    /// Number of identical on-module fabrics tiled side by side (≥ 1).
    pub modules: u32,
    /// Inter-module tier technology.
    pub interconnect: Interconnect,
    /// Inter-module link parameters (per switch stage).
    pub inter: LinkParams,
    /// Fidelity retained per on-module hop, in `(0, 1]`.
    pub intra_fidelity: f64,
    /// Dollars per inter-module link (fiber + switch share); the
    /// `InterTierCost` scenario axis sweeps this knob.
    pub inter_unit_cost: f64,
    /// Whether the scenario runner appends `cost_dollars` / `fidelity`
    /// columns to this machine's reports. Differential suites switch it
    /// off to keep K=1 reports byte-identical to flat runs.
    pub report_cost: bool,
}

impl ModularSpec {
    /// The degenerate single-module spec with an ideal inter tier and
    /// ion-trap-ish per-hop fidelity.
    pub fn single() -> ModularSpec {
        ModularSpec {
            modules: 1,
            interconnect: Interconnect::OpticalSwitch,
            inter: LinkParams::ideal(),
            intra_fidelity: 0.9995,
            inter_unit_cost: 4.0,
            report_cost: true,
        }
    }

    /// Sets the module count (builder style).
    #[must_use]
    pub fn with_modules(mut self, modules: u32) -> ModularSpec {
        self.modules = modules;
        self
    }

    /// Sets the inter-module tier technology (builder style).
    #[must_use]
    pub fn with_interconnect(mut self, interconnect: Interconnect) -> ModularSpec {
        self.interconnect = interconnect;
        self
    }

    /// Sets the inter-tier stage latency in nanoseconds (builder style).
    #[must_use]
    pub fn with_latency_ns(mut self, latency_ns: u64) -> ModularSpec {
        self.inter.latency_ns = latency_ns;
        self
    }

    /// Sets the teleporter slots per inter-link endpoint (builder style).
    #[must_use]
    pub fn with_teleporter_slots(mut self, slots: u32) -> ModularSpec {
        self.inter.teleporter_slots = slots;
        self
    }

    /// Sets the per-stage inter-tier fidelity (builder style).
    #[must_use]
    pub fn with_inter_fidelity(mut self, fidelity: f64) -> ModularSpec {
        self.inter.fidelity = fidelity;
        self
    }

    /// Sets the per-hop on-module fidelity (builder style).
    #[must_use]
    pub fn with_intra_fidelity(mut self, fidelity: f64) -> ModularSpec {
        self.intra_fidelity = fidelity;
        self
    }

    /// Sets the dollars per inter-module link (builder style).
    #[must_use]
    pub fn with_inter_unit_cost(mut self, cost: f64) -> ModularSpec {
        self.inter_unit_cost = cost;
        self
    }

    /// Switches the cost/fidelity report columns on or off (builder
    /// style).
    #[must_use]
    pub fn with_report_cost(mut self, report: bool) -> ModularSpec {
        self.report_cost = report;
        self
    }

    /// Checks the spec's internal invariants.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.modules == 0 {
            return Err("modular block needs at least one module".to_string());
        }
        if let Interconnect::FatTree { radix } = self.interconnect {
            if radix < 2 {
                return Err(format!("fat-tree radix must be at least 2, got {radix}"));
            }
        }
        for (name, f) in [
            ("inter fidelity", self.inter.fidelity),
            ("intra fidelity", self.intra_fidelity),
        ] {
            if !(f.is_finite() && f > 0.0 && f <= 1.0) {
                return Err(format!("{name} must be in (0, 1], got {f}"));
            }
        }
        if !(self.inter_unit_cost.is_finite() && self.inter_unit_cost >= 0.0) {
            return Err(format!(
                "inter_unit_cost must be finite and non-negative, got {}",
                self.inter_unit_cost
            ));
        }
        Ok(())
    }
}

/// Mean hop composition of a route, split by tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteProfile {
    /// Mean on-module hops per route (over all ordered distinct pairs).
    pub avg_intra_hops: f64,
    /// Mean inter-module link crossings per route. The module graph is
    /// complete, so a crossing pair is modelled as exactly one inter
    /// link (documented approximation: indirect min routes through a
    /// third module are counted as one crossing too).
    pub avg_inter_hops: f64,
}

/// K identical copies of a base fabric joined through an inter-module
/// tier — itself a [`Topology`].
///
/// # Composition
///
/// * **Addressing.** The composed grid is `K·w × h` (modules tiled
///   along X). Node `m·N + l` is local node `l` of module `m`
///   (`N = w·h` base nodes); [`Topology::node_index`] /
///   [`Topology::coord_of`] translate between module-major indices and
///   the tiled grid, so drivers place qubits on the composed grid
///   without knowing about modules.
/// * **Ports.** Each node keeps its base ports (same classes), then up
///   to `ceil(K / N)` uplink ports in **one extra port class** — tier
///   crossings change class, so they pay the existing turn penalty and
///   draw from their own teleporter pool, exactly like a dimension
///   change on the flat mesh.
/// * **Wiring.** One inter-module link per unordered module pair
///   `(i, j)`: its gateway in module `i` is local node `j mod N`, and in
///   module `j` local node `i mod N`, spreading gateways across each
///   module. Intra links keep their base indices per module
///   (`m·links(base) + base link`); inter links follow densely.
/// * **Routing.** Distances are exact (all-pairs BFS over the composed
///   graph, precomputed at construction); [`Topology::min_ports`]
///   returns the BFS-minimal ports in ascending order, so every
///   existing router works unchanged and stays minimal and loop-free.
/// * **Flow control.** With K > 1 the composed channel-dependency graph
///   closes cycles through the uplinks, so
///   [`Topology::dor_is_acyclic`] reports `false` and the simulator
///   arms bubble flow control (this requires ≥ 2 teleporters per node,
///   and one teleporter class more than the base fabric).
/// * **Degenerate case.** K = 1 delegates every method to the base
///   fabric — same name, ports, links and hooks — so composed reports
///   reproduce flat reports byte for byte.
#[derive(Debug, Clone)]
pub struct ModularFabric<T> {
    base: T,
    spec: ModularSpec,
    /// Module count as usize.
    k: usize,
    /// Base fabric node count.
    n: usize,
    base_ports: usize,
    base_classes: usize,
    base_links: usize,
    /// Uplink ports per node (0 when K = 1).
    uplink_ports: usize,
    /// Precomputed `latency_ns × tier_hops` for inter links.
    inter_penalty_ns: u64,
    /// All-pairs hop distances (empty when K = 1).
    dist: Vec<u32>,
    /// Max finite distance (unused when K = 1).
    diameter: u32,
}

impl<T: Topology> ModularFabric<T> {
    /// Composes `spec.modules` copies of `base`.
    ///
    /// # Panics
    ///
    /// Panics when the spec fails [`ModularSpec::validate`], when the
    /// composed grid width overflows `u16`, or when a node's port count
    /// overflows the `u8` port index space. The scenario layer
    /// validates these as structured errors before construction.
    pub fn new(base: T, spec: &ModularSpec) -> ModularFabric<T> {
        spec.validate().expect("modular spec must validate");
        let k = spec.modules as usize;
        let n = base.nodes();
        let base_ports = base.ports_per_node();
        let base_classes = base.port_classes();
        let base_links = base.links();
        let uplink_ports = if k > 1 { k.div_ceil(n) } else { 0 };
        assert!(
            k == 1 || usize::from(base.width()) * k <= usize::from(u16::MAX),
            "composed grid width {}x{k} overflows the u16 addressing grid",
            base.width()
        );
        assert!(
            base_ports + uplink_ports <= usize::from(u8::MAX),
            "composed port count {} overflows the u8 port index space",
            base_ports + uplink_ports
        );
        let inter_penalty_ns = spec
            .inter
            .latency_ns
            .saturating_mul(u64::from(spec.interconnect.tier_hops(k)));
        let mut fabric = ModularFabric {
            base,
            spec: spec.clone(),
            k,
            n,
            base_ports,
            base_classes,
            base_links,
            uplink_ports,
            inter_penalty_ns,
            dist: Vec::new(),
            diameter: 0,
        };
        if k > 1 {
            fabric.compute_distances();
        }
        fabric
    }

    /// All-pairs BFS over the composed port graph. Metadata-scale work
    /// (`O(nodes²)` memory, `O(nodes · links)` time), done once at
    /// construction so the routing hot path is a table lookup.
    fn compute_distances(&mut self) {
        let nodes = self.k * self.n;
        let ports = self.base_ports + self.uplink_ports;
        let mut dist = vec![u32::MAX; nodes * nodes];
        let mut queue = std::collections::VecDeque::new();
        for src in 0..nodes {
            let row = &mut dist[src * nodes..(src + 1) * nodes];
            row[src] = 0;
            queue.clear();
            queue.push_back(src);
            while let Some(at) = queue.pop_front() {
                let d = row[at];
                for p in 0..ports {
                    if let Some(nb) = self.neighbor_raw(at, Port(p as u8)) {
                        if row[nb] == u32::MAX {
                            row[nb] = d + 1;
                            queue.push_back(nb);
                        }
                    }
                }
            }
        }
        self.diameter = dist
            .iter()
            .copied()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0);
        self.dist = dist;
    }

    /// Neighbor lookup that works before the distance table exists.
    fn neighbor_raw(&self, node: usize, port: Port) -> Option<usize> {
        let (m, l) = (node / self.n, node % self.n);
        if usize::from(port.0) < self.base_ports {
            return self.base.neighbor(l, port).map(|nb| m * self.n + nb);
        }
        let slot = usize::from(port.0) - self.base_ports;
        let j = self.uplink_module(m, l, slot)?;
        Some(j * self.n + (m % self.n))
    }

    /// The `slot`-th uplink target module of local node `l` in module
    /// `m`: ascending modules `j ≠ m` with `j mod N == l`.
    fn uplink_module(&self, m: usize, l: usize, slot: usize) -> Option<usize> {
        let mut seen = 0;
        let mut j = l;
        while j < self.k {
            if j != m {
                if seen == slot {
                    return Some(j);
                }
                seen += 1;
            }
            j += self.n;
        }
        None
    }

    /// Number of wired uplink ports at a composed node.
    fn uplinks_at(&self, node: usize) -> usize {
        let (m, l) = (node / self.n, node % self.n);
        let mut count = 0;
        let mut j = l;
        while j < self.k {
            if j != m {
                count += 1;
            }
            j += self.n;
        }
        count
    }

    /// Dense rank of the unordered module pair `(i, j)`, `i < j`.
    fn pair_rank(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.k);
        i * self.k - i * (i + 1) / 2 + (j - i - 1)
    }

    /// The base fabric.
    pub fn base(&self) -> &T {
        &self.base
    }

    /// The composing spec.
    pub fn spec(&self) -> &ModularSpec {
        &self.spec
    }

    /// On-module links across all modules.
    pub fn intra_links(&self) -> usize {
        self.k * self.base_links
    }

    /// Inter-module links (one per unordered module pair).
    pub fn inter_links(&self) -> usize {
        self.k * (self.k - 1) / 2
    }

    /// Switch ports the inter tier needs (see
    /// [`Interconnect::switch_ports`]).
    pub fn switch_ports(&self) -> usize {
        if self.k > 1 {
            self.spec.interconnect.switch_ports(self.k)
        } else {
            0
        }
    }

    /// Total teleporter slots the inter tier adds across all gateway
    /// nodes (two endpoints per inter link).
    pub fn uplink_slots(&self) -> u64 {
        2 * self.inter_links() as u64 * u64::from(self.spec.inter.teleporter_slots)
    }

    /// Switch stages per inter-module crossing.
    pub fn tier_hops(&self) -> u32 {
        self.spec.interconnect.tier_hops(self.k)
    }

    /// Mean route composition by tier over all ordered distinct pairs.
    ///
    /// Cross-module pairs are modelled as exactly one inter-link
    /// crossing (the module graph is complete); the intra share is the
    /// exact mean distance minus that crossing.
    pub fn route_profile(&self) -> RouteProfile {
        let nodes = self.k * self.n;
        if self.k == 1 || nodes < 2 {
            return RouteProfile {
                avg_intra_hops: self.base.avg_distance(),
                avg_inter_hops: 0.0,
            };
        }
        let pairs = (nodes * (nodes - 1)) as f64;
        let cross = (nodes * (self.k - 1) * self.n) as f64;
        let avg_inter = cross / pairs;
        RouteProfile {
            avg_intra_hops: (self.avg_distance() - avg_inter).max(0.0),
            avg_inter_hops: avg_inter,
        }
    }

    /// End-to-end fidelity estimate for the mean route:
    /// `intra^avg_intra × inter^(avg_inter × tier_hops)`.
    pub fn fidelity_estimate(&self) -> f64 {
        let profile = self.route_profile();
        self.spec.intra_fidelity.powf(profile.avg_intra_hops)
            * self
                .spec
                .inter
                .fidelity
                .powf(profile.avg_inter_hops * f64::from(self.tier_hops()))
    }
}

impl<T: Topology> Topology for ModularFabric<T> {
    fn name(&self) -> &'static str {
        if self.k == 1 {
            self.base.name()
        } else {
            "modular"
        }
    }

    fn width(&self) -> u16 {
        if self.k == 1 {
            self.base.width()
        } else {
            self.base.width() * self.k as u16
        }
    }

    fn height(&self) -> u16 {
        self.base.height()
    }

    fn ports_per_node(&self) -> usize {
        self.base_ports + self.uplink_ports
    }

    fn port_classes(&self) -> usize {
        if self.k == 1 {
            self.base_classes
        } else {
            self.base_classes + 1
        }
    }

    fn port_class(&self, port: Port) -> usize {
        if usize::from(port.0) < self.base_ports {
            self.base.port_class(port)
        } else {
            self.base_classes
        }
    }

    fn neighbor(&self, node: usize, port: Port) -> Option<usize> {
        self.neighbor_raw(node, port)
    }

    fn reverse_port(&self, node: usize, port: Port) -> Port {
        let (m, l) = (node / self.n, node % self.n);
        if usize::from(port.0) < self.base_ports {
            return self.base.reverse_port(l, port);
        }
        let slot = usize::from(port.0) - self.base_ports;
        let j = self
            .uplink_module(m, l, slot)
            .expect("reverse_port of a wired uplink");
        // On the neighbor (module j, local m mod N), find which uplink
        // slot leads back to module m.
        let l2 = m % self.n;
        let mut back = 0;
        let mut jj = l2;
        while jj < self.k {
            if jj != j {
                if jj == m {
                    break;
                }
                back += 1;
            }
            jj += self.n;
        }
        Port((self.base_ports + back) as u8)
    }

    fn links(&self) -> usize {
        self.intra_links() + self.inter_links()
    }

    fn link_index(&self, node: usize, port: Port) -> usize {
        let (m, l) = (node / self.n, node % self.n);
        if usize::from(port.0) < self.base_ports {
            return m * self.base_links + self.base.link_index(l, port);
        }
        let slot = usize::from(port.0) - self.base_ports;
        let j = self
            .uplink_module(m, l, slot)
            .expect("link_index of a wired uplink");
        let (a, b) = (m.min(j), m.max(j));
        self.intra_links() + self.pair_rank(a, b)
    }

    fn distance(&self, a: usize, b: usize) -> u32 {
        if self.k == 1 {
            self.base.distance(a, b)
        } else {
            self.dist[a * self.k * self.n + b]
        }
    }

    fn min_ports(&self, node: usize, dst: usize) -> Vec<Port> {
        if self.k == 1 {
            return self.base.min_ports(node, dst);
        }
        let here = self.distance(node, dst);
        let mut ports = Vec::new();
        for p in 0..self.ports_per_node() {
            let port = Port(p as u8);
            if let Some(nb) = self.neighbor_raw(node, port) {
                if self.distance(nb, dst) + 1 == here {
                    ports.push(port);
                }
            }
        }
        ports
    }

    fn min_port(&self, node: usize, dst: usize) -> Option<Port> {
        if self.k == 1 {
            return self.base.min_port(node, dst);
        }
        let here = self.distance(node, dst);
        for p in 0..self.ports_per_node() {
            let port = Port(p as u8);
            if let Some(nb) = self.neighbor_raw(node, port) {
                if self.distance(nb, dst) + 1 == here {
                    return Some(port);
                }
            }
        }
        None
    }

    fn diameter(&self) -> u32 {
        if self.k == 1 {
            self.base.diameter()
        } else {
            self.diameter
        }
    }

    fn bisection_width(&self) -> usize {
        if self.k == 1 {
            return self.base.bisection_width();
        }
        // Best of the two balanced cut families: severing the complete
        // module graph between two halves of the modules, or bisecting
        // every module in place along its own best cut (documented
        // approximation: inter links crossing the in-place cut are not
        // charged).
        let half = self.k / 2;
        let module_cut = half * (self.k - half);
        module_cut.min(self.k * self.base.bisection_width())
    }

    fn dor_is_acyclic(&self) -> bool {
        if self.k == 1 {
            self.base.dor_is_acyclic()
        } else {
            // The uplinks close rings through the module graph, so the
            // simulator must arm bubble flow control.
            false
        }
    }

    fn node_index(&self, c: Coord) -> usize {
        if self.k == 1 {
            return self.base.node_index(c);
        }
        let bw = self.base.width();
        let m = usize::from(c.x / bw);
        let local = Coord::new(c.x % bw, c.y);
        m * self.n + self.base.node_index(local)
    }

    fn coord_of(&self, node: usize) -> Coord {
        if self.k == 1 {
            return self.base.coord_of(node);
        }
        let (m, l) = (node / self.n, node % self.n);
        let local = self.base.coord_of(l);
        Coord::new(m as u16 * self.base.width() + local.x, local.y)
    }

    fn fault_aware(&self) -> bool {
        self.base.fault_aware()
    }

    fn is_reachable(&self, a: usize, b: usize) -> bool {
        if self.k == 1 {
            self.base.is_reachable(a, b)
        } else {
            true
        }
    }

    fn healthy_distance(&self, a: usize, b: usize) -> u32 {
        self.distance(a, b)
    }

    fn teleporter_capacity(&self, node: usize, base: u32) -> u32 {
        if self.k == 1 {
            return self.base.teleporter_capacity(node, base);
        }
        let local = self.base.teleporter_capacity(node % self.n, base);
        let bonus = self.uplinks_at(node) as u32 * self.spec.inter.teleporter_slots;
        local.saturating_add(bonus)
    }

    fn hop_penalty_ns(&self, link: usize, now_ns: u64) -> u64 {
        if self.k == 1 {
            return self.base.hop_penalty_ns(link, now_ns);
        }
        if link >= self.intra_links() {
            self.inter_penalty_ns
        } else {
            self.base.hop_penalty_ns(link % self.base_links, now_ns)
        }
    }

    fn link_penalties(&self) -> bool {
        (self.k > 1 && self.inter_penalty_ns > 0) || self.base.link_penalties()
    }

    fn modules(&self) -> usize {
        self.k
    }

    fn module_of(&self, node: usize) -> usize {
        if self.k == 1 {
            0
        } else {
            node / self.n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qic_net::topology::{Fabric, Mesh, Torus};

    fn two_by_two(k: u32) -> ModularFabric<Fabric> {
        ModularFabric::new(
            Fabric::Mesh(Mesh::new(2, 2)),
            &ModularSpec::single().with_modules(k),
        )
    }

    #[test]
    fn degenerate_delegates_everything() {
        let base = Fabric::Mesh(Mesh::new(4, 4));
        let m = ModularFabric::new(base, &ModularSpec::single());
        assert_eq!(m.name(), base.name());
        assert_eq!(m.ports_per_node(), base.ports_per_node());
        assert_eq!(m.port_classes(), base.port_classes());
        assert_eq!(m.links(), base.links());
        assert_eq!(m.diameter(), base.diameter());
        assert_eq!(m.bisection_width(), base.bisection_width());
        assert_eq!(m.dor_is_acyclic(), base.dor_is_acyclic());
        assert!(!m.link_penalties());
        for a in 0..m.nodes() {
            for b in 0..m.nodes() {
                assert_eq!(m.distance(a, b), base.distance(a, b));
                assert_eq!(m.min_ports(a, b), base.min_ports(a, b));
            }
        }
    }

    #[test]
    fn composed_wiring_is_consistent() {
        for k in [2u32, 3, 5] {
            let m = two_by_two(k);
            for node in 0..m.nodes() {
                for p in 0..m.ports_per_node() {
                    let port = Port(p as u8);
                    if let Some(nb) = m.neighbor(node, port) {
                        let back = m.reverse_port(node, port);
                        assert_eq!(m.neighbor(nb, back), Some(node), "k={k} n={node} p={p}");
                        assert_eq!(
                            m.link_index(node, port),
                            m.link_index(nb, back),
                            "link indices agree at both endpoints"
                        );
                        assert!(m.link_index(node, port) < m.links());
                    }
                }
            }
        }
    }

    #[test]
    fn uplinks_pay_the_tier_penalty() {
        let spec = ModularSpec::single().with_modules(4).with_latency_ns(250);
        let m = ModularFabric::new(Fabric::Torus(Torus::new(2, 2)), &spec);
        assert!(m.link_penalties());
        assert_eq!(m.hop_penalty_ns(0, 0), 0, "intra links stay free");
        assert_eq!(m.hop_penalty_ns(m.intra_links(), 0), 250);
        let fat = ModularSpec::single()
            .with_modules(4)
            .with_latency_ns(250)
            .with_interconnect(Interconnect::FatTree { radix: 2 });
        let m = ModularFabric::new(Fabric::Torus(Torus::new(2, 2)), &fat);
        assert_eq!(m.tier_hops(), 4, "4 modules at radix 2: 2 up + 2 down");
        assert_eq!(m.hop_penalty_ns(m.intra_links(), 0), 1000);
    }

    #[test]
    fn gateway_pools_grow_by_slot_count() {
        let spec = ModularSpec::single()
            .with_modules(2)
            .with_teleporter_slots(3);
        let m = ModularFabric::new(Fabric::Mesh(Mesh::new(2, 2)), &spec);
        // Module 0's gateway is local 1, module 1's is local 0.
        assert_eq!(m.teleporter_capacity(1, 6), 9);
        assert_eq!(m.teleporter_capacity(4, 6), 9);
        assert_eq!(
            m.teleporter_capacity(0, 6),
            6,
            "non-gateway keeps the budget"
        );
        assert_eq!(m.uplink_slots(), 6, "2 endpoints × 3 slots");
    }

    #[test]
    fn labels_round_trip() {
        for i in [
            Interconnect::OpticalSwitch,
            Interconnect::FatTree { radix: 2 },
            Interconnect::FatTree { radix: 16 },
        ] {
            assert_eq!(Interconnect::parse(&i.label()), Some(i));
        }
        assert_eq!(Interconnect::parse("fat_tree:x"), None);
        assert_eq!(Interconnect::parse("crossbar"), None);
    }
}
