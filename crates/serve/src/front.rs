//! The JSONL front-end: newline-delimited requests in, newline-delimited
//! events out — scriptable from the shell (see `examples/serve.rs`).
//!
//! # Protocol
//!
//! One JSON object per line. Requests:
//!
//! ```text
//! {"op": "submit", "preset": "design_space", "scale": "small"}
//! {"op": "submit", "spec": "<ScenarioSpec JSON, as a string>"}
//! {"op": "status", "job": 1}
//! {"op": "wait", "job": 1}
//! {"op": "cancel", "job": 1}
//! {"op": "metrics"}
//! {"op": "shutdown"}
//! ```
//!
//! Responses (one or more lines per request; every line is one object):
//!
//! * `{"event": "submitted", "job": 1}` — or
//!   `{"event": "error", "error": "queue_full", "limit": 64}` when the
//!   admission bound pushes back.
//! * `status` answers with the job's current state; `wait` first
//!   streams `{"event": "progress", "job": 1, "done": 3, "total": 8}`
//!   lines as points finish, then the terminal
//!   `{"event": "result", "job": 1, "state": "done",
//!   "source": "computed", "wall_ms": …, "report": "<record JSON>"}`.
//!   The embedded report is the campaign's lossless record document —
//!   byte-identical for cached, coalesced and computed jobs alike.
//! * `{"event": "bye"}` acknowledges `shutdown` and ends the session.
//!
//! With an output directory configured, each completed job's report is
//! also written to `{dir}/job-N.json` (record JSON) and
//! `{dir}/job-N.csv` — the same bytes `examples/scenario_run.rs` would
//! produce for the same spec, which is how the CI smoke test checks
//! cache hits end to end.

use std::io::{BufRead, Write};
use std::path::Path;
use std::time::Duration;

use qic_core::scenario::{ScenarioRegistry, ScenarioScale, ScenarioSpec};
use qic_sweep::json::{get, get_opt, obj, Json, JsonError};

use crate::job::{JobId, JobState};
use crate::service::{ServeError, ServeHandle};

/// How often `wait` polls for progress changes.
const WAIT_POLL: Duration = Duration::from_millis(5);

/// Runs the JSONL session loop: reads requests from `input` until EOF
/// or a `shutdown` op, writing response events to `output` (flushed
/// after every line, so the stream is pipe- and socket-friendly).
///
/// `out_dir`, when set, receives `job-N.json` / `job-N.csv` files for
/// every job a `wait` resolves as done.
///
/// # Errors
///
/// Only I/O errors on `output` (or `out_dir` files) are fatal to the
/// session; malformed requests produce `error` events and the loop
/// continues.
pub fn serve_lines<R: BufRead, W: Write>(
    handle: &ServeHandle,
    input: R,
    mut output: W,
    out_dir: Option<&Path>,
) -> std::io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match request_of(&line) {
            Ok(Request::Shutdown) => {
                emit(&mut output, obj(vec![("event", Json::Str("bye".into()))]))?;
                return Ok(());
            }
            Ok(req) => handle_request(handle, req, &mut output, out_dir)?,
            Err(e) => emit(
                &mut output,
                obj(vec![
                    ("event", Json::Str("error".into())),
                    ("error", Json::Str("bad_request".into())),
                    ("message", Json::Str(e.to_string())),
                ]),
            )?,
        }
    }
    Ok(())
}

enum Request {
    Submit(Box<ScenarioSpec>),
    Status(JobId),
    Wait(JobId),
    Cancel(JobId),
    Metrics,
    Shutdown,
}

fn request_of(line: &str) -> Result<Request, JsonError> {
    let parsed = Json::parse(line)?;
    let fields = parsed.obj_of("request")?;
    let op = get(fields, "op", "request")?.str_of("op")?;
    let job_of = |ctx: &str| -> Result<JobId, JsonError> {
        Ok(JobId(get(fields, "job", ctx)?.u64_of("job")?))
    };
    match op {
        "submit" => {
            let spec = match get_opt(fields, "spec") {
                Some(text) => {
                    let text = text.str_of("spec")?;
                    ScenarioSpec::from_json(text)
                        .map_err(|e| Json::schema_err(format!("spec: {e}")))?
                }
                None => {
                    let preset = get(fields, "preset", "submit")?.str_of("preset")?;
                    let scale = match get_opt(fields, "scale") {
                        Some(s) => match s.str_of("scale")? {
                            "full" => ScenarioScale::Full,
                            "small" => ScenarioScale::SmallTest,
                            other => {
                                return Err(Json::schema_err(format!(
                                    "scale {other:?} (want \"full\" or \"small\")"
                                )))
                            }
                        },
                        None => ScenarioScale::Full,
                    };
                    ScenarioRegistry::builtin()
                        .spec(preset, scale)
                        .ok_or_else(|| Json::schema_err(format!("unknown preset {preset:?}")))?
                }
            };
            Ok(Request::Submit(Box::new(spec)))
        }
        "status" => Ok(Request::Status(job_of("status")?)),
        "wait" => Ok(Request::Wait(job_of("wait")?)),
        "cancel" => Ok(Request::Cancel(job_of("cancel")?)),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(Json::schema_err(format!("unknown op {other:?}"))),
    }
}

fn handle_request<W: Write>(
    handle: &ServeHandle,
    req: Request,
    output: &mut W,
    out_dir: Option<&Path>,
) -> std::io::Result<()> {
    match req {
        Request::Submit(spec) => match handle.submit(*spec) {
            Ok(id) => emit(
                output,
                obj(vec![
                    ("event", Json::Str("submitted".into())),
                    ("job", Json::Int(i128::from(id.0))),
                ]),
            ),
            Err(ServeError::QueueFull { limit }) => emit(
                output,
                obj(vec![
                    ("event", Json::Str("error".into())),
                    ("error", Json::Str("queue_full".into())),
                    ("limit", Json::Int(limit as i128)),
                ]),
            ),
            Err(ServeError::ShuttingDown) => emit(
                output,
                obj(vec![
                    ("event", Json::Str("error".into())),
                    ("error", Json::Str("shutting_down".into())),
                ]),
            ),
        },
        Request::Status(id) => match handle.status(id) {
            None => unknown_job(output, id),
            Some(state) => emit(output, state_event("status", id, &state)),
        },
        Request::Wait(id) => {
            if handle.status(id).is_none() {
                return unknown_job(output, id);
            }
            let mut last_done = usize::MAX;
            let state = loop {
                match handle.status(id) {
                    None => return unknown_job(output, id),
                    Some(state) if state.is_terminal() => break state,
                    Some(JobState::Running { done, total }) => {
                        if done != last_done {
                            last_done = done;
                            emit(
                                output,
                                obj(vec![
                                    ("event", Json::Str("progress".into())),
                                    ("job", Json::Int(i128::from(id.0))),
                                    ("done", Json::Int(done as i128)),
                                    ("total", Json::Int(total as i128)),
                                ]),
                            )?;
                        }
                        std::thread::sleep(WAIT_POLL);
                    }
                    Some(_) => std::thread::sleep(WAIT_POLL),
                }
            };
            if let (JobState::Done { report, .. }, Some(dir)) = (&state, out_dir) {
                std::fs::create_dir_all(dir)?;
                let stem = dir.join(id.to_string());
                std::fs::write(stem.with_extension("json"), report.report.to_record_json())?;
                std::fs::write(stem.with_extension("csv"), report.to_csv())?;
            }
            emit(output, state_event("result", id, &state))
        }
        Request::Cancel(id) => emit(
            output,
            obj(vec![
                ("event", Json::Str("cancelled".into())),
                ("job", Json::Int(i128::from(id.0))),
                ("accepted", Json::Bool(handle.cancel(id))),
            ]),
        ),
        Request::Metrics => {
            let metrics = handle.metrics();
            let mut fields = vec![("event".to_string(), Json::Str("metrics".into()))];
            fields.extend(
                metrics
                    .iter()
                    .map(|(name, value)| (name.to_string(), Json::Float(value))),
            );
            emit(output, Json::Obj(fields))
        }
        Request::Shutdown => unreachable!("handled by the session loop"),
    }
}

/// One terminal-or-status event line for a job state.
fn state_event(event: &str, id: JobId, state: &JobState) -> Json {
    let mut fields = vec![
        ("event", Json::Str(event.into())),
        ("job", Json::Int(i128::from(id.0))),
        ("state", Json::Str(state.label().into())),
    ];
    match state {
        JobState::Queued => {}
        JobState::Running { done, total } => {
            fields.push(("done", Json::Int(*done as i128)));
            fields.push(("total", Json::Int(*total as i128)));
        }
        JobState::Done {
            report,
            source,
            wall_ns,
        } => {
            fields.push(("source", Json::Str(source.label().into())));
            fields.push(("wall_ms", Json::Float(*wall_ns as f64 / 1e6)));
            fields.push(("report", Json::Str(report.report.to_record_json())));
        }
        JobState::Failed { message } => fields.push(("message", Json::Str(message.clone()))),
        JobState::Rejected { reason } => fields.push(("reason", Json::Str(reason.clone()))),
    }
    obj(fields)
}

fn unknown_job<W: Write>(output: &mut W, id: JobId) -> std::io::Result<()> {
    emit(
        output,
        obj(vec![
            ("event", Json::Str("error".into())),
            ("error", Json::Str("unknown_job".into())),
            ("job", Json::Int(i128::from(id.0))),
        ]),
    )
}

fn emit<W: Write>(output: &mut W, event: Json) -> std::io::Result<()> {
    writeln!(output, "{}", event.emit())?;
    output.flush()
}
