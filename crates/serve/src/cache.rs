//! The on-disk result cache: [`CacheDir`].
//!
//! One file per scenario identity, named by its digest
//! (`{digest:016x}.result.json`), each a versioned record that embeds
//! both the canonical identity document it was keyed on and the
//! campaign report's lossless record JSON:
//!
//! ```json
//! {"record": "serve_result", "version": 1, "digest": "…16 hex…",
//!  "scenario": "<canonical identity JSON>", "report": "<record JSON>"}
//! ```
//!
//! Embedding the identity makes corruption *checkable*: a load verifies
//! the envelope shape, re-hashes the embedded identity, and compares it
//! against both the digest field and the identity the caller asked for.
//! Any mismatch — truncation, a doctored digest, a hash collision
//! between two different identities — is a structured [`CacheError`]
//! the service counts and treats as a miss (recompute), never a wrong
//! report.
//!
//! Writes are atomic: the record lands in a `.tmp` sibling first and is
//! renamed into place, so a crashed writer leaves either the old record
//! or none — readers never observe a half-written file.

use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use qic_core::scenario::{ScenarioSpec, SpecDigest};
use qic_sweep::json::{check_fields, get, obj, Json};
use qic_sweep::CampaignReport;

/// The record-envelope version this build reads and writes. Bump on
/// incompatible change; records with any other version are structured
/// misses (old caches are recomputed, not misread).
pub const CACHE_VERSION: u32 = 1;

/// Why a cache operation failed. `Corrupt` and `Mismatch` are the
/// *structured miss* outcomes the service recomputes through; `Io`
/// covers the filesystem itself misbehaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// Which operation (`create dir`, `read`, `write`, `rename`).
        op: &'static str,
        /// The OS error text.
        message: String,
    },
    /// The record exists but cannot be trusted: unparsable, wrong
    /// envelope, wrong version, or an embedded digest that does not
    /// match the embedded identity.
    Corrupt {
        /// The record's path.
        path: String,
        /// What check failed.
        problem: String,
    },
    /// A well-formed record whose identity is not the one asked for —
    /// a digest collision or a renamed file. Served reports must never
    /// cross identities, so this is a miss, not a hit.
    Mismatch {
        /// The record's path.
        path: String,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Io { path, op, message } => {
                write!(f, "cache {op} failed for {path}: {message}")
            }
            CacheError::Corrupt { path, problem } => {
                write!(f, "corrupt cache record {path}: {problem}")
            }
            CacheError::Mismatch { path } => {
                write!(f, "cache record {path} holds a different scenario identity")
            }
        }
    }
}

impl std::error::Error for CacheError {}

/// A directory of content-addressed result records.
#[derive(Debug, Clone)]
pub struct CacheDir {
    dir: PathBuf,
}

impl CacheDir {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// [`CacheError::Io`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CacheDir, CacheError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| CacheError::Io {
            path: dir.display().to_string(),
            op: "create dir",
            message: e.to_string(),
        })?;
        Ok(CacheDir { dir })
    }

    /// The record path for a digest: `{dir}/{digest:016x}.result.json`.
    pub fn path_of(&self, digest: SpecDigest) -> PathBuf {
        self.dir.join(format!("{digest}.result.json"))
    }

    /// Stores a report under its spec's digest, atomically
    /// (tmp + rename). Overwrites any existing record — records are
    /// pure functions of the identity, so a rewrite can only refresh
    /// identical bytes or repair corruption.
    ///
    /// # Errors
    ///
    /// [`CacheError::Io`] if writing or renaming fails.
    pub fn store(
        &self,
        spec: &ScenarioSpec,
        report: &CampaignReport,
    ) -> Result<PathBuf, CacheError> {
        let digest = SpecDigest::of(spec);
        let record = obj(vec![
            ("record", Json::Str("serve_result".into())),
            ("version", Json::Int(i128::from(CACHE_VERSION))),
            ("digest", Json::Str(digest.to_string())),
            ("scenario", Json::Str(SpecDigest::identity_json(spec))),
            ("report", Json::Str(report.to_record_json())),
        ])
        .emit();
        let path = self.path_of(digest);
        let tmp = path.with_extension("json.tmp");
        let io_err = |op: &'static str, p: &Path| {
            let p = p.display().to_string();
            move |e: std::io::Error| CacheError::Io {
                path: p.clone(),
                op,
                message: e.to_string(),
            }
        };
        let mut file = std::fs::File::create(&tmp).map_err(io_err("write", &tmp))?;
        file.write_all(record.as_bytes())
            .and_then(|()| file.sync_all())
            .map_err(io_err("write", &tmp))?;
        drop(file);
        std::fs::rename(&tmp, &path).map_err(io_err("rename", &path))?;
        Ok(path)
    }

    /// Loads the report cached for `spec`'s identity, fully verified.
    ///
    /// Returns `Ok(None)` when no record exists (a plain miss).
    ///
    /// # Errors
    ///
    /// [`CacheError::Corrupt`] for an untrustworthy record,
    /// [`CacheError::Mismatch`] for a trustworthy record of a
    /// *different* identity, [`CacheError::Io`] if reading fails.
    pub fn load(&self, spec: &ScenarioSpec) -> Result<Option<CampaignReport>, CacheError> {
        let digest = SpecDigest::of(spec);
        let path = self.path_of(digest);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(CacheError::Io {
                    path: path.display().to_string(),
                    op: "read",
                    message: e.to_string(),
                })
            }
        };
        let corrupt = |problem: String| CacheError::Corrupt {
            path: path.display().to_string(),
            problem,
        };
        let parsed = Json::parse(&text).map_err(|e| corrupt(e.to_string()))?;
        let fields = parsed
            .obj_of("cache record")
            .map_err(|e| corrupt(e.to_string()))?;
        (|| -> Result<(), qic_sweep::json::JsonError> {
            check_fields(
                fields,
                &["record", "version", "digest", "scenario", "report"],
                "cache record",
            )?;
            let kind = get(fields, "record", "cache record")?.str_of("record")?;
            if kind != "serve_result" {
                return Err(Json::schema_err(format!("not a serve_result: {kind:?}")));
            }
            let version = get(fields, "version", "cache record")?.u32_of("version")?;
            if version != CACHE_VERSION {
                return Err(Json::schema_err(format!(
                    "version {version}, this build reads {CACHE_VERSION}"
                )));
            }
            Ok(())
        })()
        .map_err(|e| corrupt(e.to_string()))?;
        let claimed = get(fields, "digest", "cache record")
            .and_then(|j| j.str_of("digest"))
            .map_err(|e| corrupt(e.to_string()))?;
        let scenario = get(fields, "scenario", "cache record")
            .and_then(|j| j.str_of("scenario"))
            .map_err(|e| corrupt(e.to_string()))?;
        // The embedded digest must be the hash of the embedded identity
        // — otherwise one of the two was doctored or damaged.
        let actual = SpecDigest::from_u64(qic_sweep::digest_str(scenario));
        match SpecDigest::parse_hex(claimed) {
            Some(d) if d == actual => {}
            Some(_) => {
                return Err(corrupt(
                    "digest field does not match the embedded identity".into(),
                ))
            }
            None => return Err(corrupt(format!("unparsable digest {claimed:?}"))),
        }
        // A self-consistent record can still be the *wrong* record: the
        // file name collided or was renamed onto this digest.
        if actual != digest || scenario != SpecDigest::identity_json(spec) {
            return Err(CacheError::Mismatch {
                path: path.display().to_string(),
            });
        }
        let report = get(fields, "report", "cache record")
            .and_then(|j| j.str_of("report"))
            .map_err(|e| corrupt(e.to_string()))?;
        CampaignReport::from_record_json(report)
            .map(Some)
            .map_err(|e| corrupt(format!("embedded report: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qic_core::scenario::{self, ScenarioRegistry, ScenarioScale};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qic_serve_cache_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> ScenarioSpec {
        ScenarioRegistry::builtin()
            .spec("topology_faceoff", ScenarioScale::SmallTest)
            .expect("a registered preset")
    }

    #[test]
    fn round_trips_a_report_byte_for_byte() {
        let cache = CacheDir::open(tmpdir("round_trip")).unwrap();
        let spec = spec();
        let direct = scenario::run(&spec).unwrap();
        assert_eq!(cache.load(&spec).unwrap(), None, "empty cache misses");
        let path = cache.store(&spec, &direct.report).unwrap();
        assert!(path.exists());
        let loaded = cache.load(&spec).unwrap().expect("stored record loads");
        assert_eq!(loaded, direct.report, "wall_ns excluded, all else equal");
        assert_eq!(loaded.to_json(), direct.report.to_json());
        assert_eq!(loaded.to_csv(), direct.report.to_csv());
        assert_eq!(loaded.to_record_json(), direct.report.to_record_json());
    }

    #[test]
    fn truncated_and_doctored_records_are_structured_misses() {
        let cache = CacheDir::open(tmpdir("corrupt")).unwrap();
        let spec = spec();
        let report = scenario::run(&spec).unwrap().report;
        let path = cache.store(&spec, &report).unwrap();
        let original = std::fs::read_to_string(&path).unwrap();

        // Truncation: unparsable → Corrupt.
        std::fs::write(&path, &original[..original.len() / 2]).unwrap();
        assert!(matches!(cache.load(&spec), Err(CacheError::Corrupt { .. })));

        // A doctored digest field → Corrupt (digest ≠ embedded identity).
        let digest = SpecDigest::of(&spec).to_string();
        let doctored = original.replacen(&digest, &"0".repeat(16), 1);
        assert_ne!(doctored, original);
        std::fs::write(&path, doctored).unwrap();
        assert!(matches!(cache.load(&spec), Err(CacheError::Corrupt { .. })));

        // A different scenario's (self-consistent) record renamed onto
        // this digest → Mismatch.
        let other = spec.clone().with_seed(spec.seed.wrapping_add(1));
        cache.store(&other, &report).unwrap();
        std::fs::rename(cache.path_of(SpecDigest::of(&other)), &path).unwrap();
        assert!(matches!(
            cache.load(&spec),
            Err(CacheError::Mismatch { .. })
        ));

        // A wrong envelope version → Corrupt, not a misread.
        std::fs::write(
            &path,
            original.replacen("\"version\": 1", "\"version\": 99", 1),
        )
        .unwrap();
        let err = cache.load(&spec).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");

        // Restoring the original bytes restores the hit.
        std::fs::write(&path, &original).unwrap();
        assert_eq!(cache.load(&spec).unwrap().unwrap(), report);
    }
}
