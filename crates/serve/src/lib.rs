//! # qic-serve — a long-lived scenario service
//!
//! Every caller of [`qic_core::scenario::run`] pays for its own worker
//! pool and recomputes results from scratch. This crate is the serving
//! substrate the ROADMAP's "heavy traffic" north star asks for: a
//! process-wide service that admits scenario documents, deduplicates
//! identical work, and schedules many campaigns fairly onto one
//! machine. Three pillars:
//!
//! * **One shared executor.** A [`qic_sweep::Executor`] serves every
//!   job; concurrent campaigns interleave at *point* granularity
//!   (round-robin), so a large study cannot starve a small one and no
//!   request spawns threads of its own.
//! * **A content-addressed result cache.** Jobs are keyed on
//!   [`qic_core::scenario::SpecDigest`] — the hash of the scenario's
//!   canonical identity. Because reports are byte-identical however a
//!   campaign was scheduled (the engine's determinism contract), a
//!   digest fully determines the report: identical submissions are
//!   cache hits (in memory, then on disk via [`CacheDir`]), and
//!   identical submissions *in flight* coalesce onto one execution
//!   (single-flight).
//! * **A job API.** [`ServeHandle::submit`] returns a [`JobId`];
//!   jobs move through [`JobState`] (`Queued` → `Running` → `Done` /
//!   `Failed` / `Rejected`) with live progress counts, cooperative
//!   cancellation, bounded admission ([`ServeError::QueueFull`] instead
//!   of unbounded memory), and graceful drain on shutdown. A JSONL
//!   front-end ([`serve_lines`], driven by `examples/serve.rs`) makes
//!   the service scriptable from the shell over stdin/stdout or TCP.
//!
//! # Worker-count precedence
//!
//! The service sizes its executor exactly like `qic-sweep` sizes a
//! transient pool: an explicit [`ServeConfig::workers`] wins; `0` (the
//! default) defers to the `QIC_WORKERS` environment variable (parsed by
//! [`qic_sweep::parse_workers`]); when that is unset or unparsable, the
//! machine's available parallelism decides. See [`qic_sweep::Executor::new`].
//!
//! # Example
//!
//! ```
//! use qic_core::scenario::{ScenarioRegistry, ScenarioScale};
//! use qic_serve::{JobState, Serve, ServeConfig};
//!
//! let serve = Serve::start(ServeConfig::default());
//! let handle = serve.handle();
//! let spec = ScenarioRegistry::builtin()
//!     .spec("design_space", ScenarioScale::SmallTest)
//!     .expect("registered");
//! let first = handle.submit(spec.clone()).expect("admitted");
//! let second = handle.submit(spec).expect("admitted");
//! let a = handle.wait(first).expect("known job");
//! let b = handle.wait(second).expect("known job");
//! // Identical submissions: one computed, one served from cache or
//! // coalesced — and the report bytes are identical either way.
//! match (&a, &b) {
//!     (JobState::Done { report: ra, .. }, JobState::Done { report: rb, .. }) => {
//!         assert_eq!(ra.report.to_json(), rb.report.to_json());
//!     }
//!     other => panic!("both jobs complete: {other:?}"),
//! }
//! serve.shutdown();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod front;
pub mod job;
pub mod service;

pub use cache::{CacheDir, CacheError};
pub use front::serve_lines;
pub use job::{CacheSource, JobId, JobState};
pub use service::{Serve, ServeConfig, ServeError, ServeHandle};
