//! The service core: [`Serve`] (the running instance), [`ServeHandle`]
//! (the submission API), and the dispatcher threads that tie the queue,
//! the cache, and the shared executor together.
//!
//! # Life of a job
//!
//! ```text
//! submit ──validate──▶ Rejected            (bad spec, observe/checkpoint)
//!        ──admit────▶ Queued               (or ServeError::QueueFull)
//! dispatcher: memory hit ───────────▶ Done{Memory}
//!             identical in flight ──▶ (follower) … Done{Coalesced}
//!             disk hit ────────────▶ Done{Disk}  (+ memory fill)
//!             miss ────────────────▶ Running{done,total} ─▶ Done{Computed}
//! cancel: queued → Failed("cancelled"); running → token tripped,
//!         in-flight points finish, then Failed("cancelled") and any
//!         followers are requeued (each gets its own attempt).
//! ```
//!
//! Every `Done` carries the same campaign payload for a given digest —
//! the engine's determinism contract makes cached, coalesced and
//! computed reports byte-identical (`wall_ns` excluded) — so provenance
//! is pure observability.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use qic_core::scenario::{self, ScenarioReport, ScenarioSpec, SpecDigest};
use qic_sweep::{CampaignReport, CancelToken, Executor, Metrics, ProgressSink};

use crate::cache::CacheDir;
use crate::job::{CacheSource, JobId, JobState};

/// Service configuration. `Default` is a small general-purpose
/// instance: auto-sized executor, 2 dispatchers, a 64-deep queue, a
/// 128-entry memory cache, no disk cache.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Executor worker threads. `0` (default) defers to `QIC_WORKERS`,
    /// then to the machine's available parallelism — the same
    /// precedence as every `qic-sweep` pool (see [`Executor::new`]).
    pub workers: usize,
    /// Dispatcher threads = jobs *preparing or computing* concurrently
    /// (each computing job's points still spread over all workers).
    /// `0` is clamped to 1.
    pub parallel_jobs: usize,
    /// Admission bound: submissions beyond this many queued jobs get
    /// [`ServeError::QueueFull`]. `0` is clamped to 1.
    pub queue_limit: usize,
    /// On-disk result cache directory; `None` disables disk caching.
    pub cache_dir: Option<PathBuf>,
    /// In-memory cache capacity in reports (FIFO eviction); `0`
    /// disables the memory tier.
    pub memory_entries: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 0,
            parallel_jobs: 2,
            queue_limit: 64,
            cache_dir: None,
            memory_entries: 128,
        }
    }
}

impl ServeConfig {
    /// Sets the executor worker count (`0` = env/auto).
    pub fn with_workers(mut self, workers: usize) -> ServeConfig {
        self.workers = workers;
        self
    }

    /// Sets the dispatcher-thread count.
    pub fn with_parallel_jobs(mut self, jobs: usize) -> ServeConfig {
        self.parallel_jobs = jobs;
        self
    }

    /// Sets the admission bound.
    pub fn with_queue_limit(mut self, limit: usize) -> ServeConfig {
        self.queue_limit = limit;
        self
    }

    /// Enables the on-disk cache at `dir`.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> ServeConfig {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Sets the in-memory cache capacity.
    pub fn with_memory_entries(mut self, entries: usize) -> ServeConfig {
        self.memory_entries = entries;
        self
    }
}

/// Why a submission was not admitted. Rejected *jobs* (bad specs) are
/// not errors — they get a [`JobId`] whose state is
/// [`JobState::Rejected`]; this type is for the service itself pushing
/// back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The queue is at its configured bound; retry later. Structured
    /// backpressure instead of unbounded memory.
    QueueFull {
        /// The configured [`ServeConfig::queue_limit`].
        limit: usize,
    },
    /// The service is draining: it finishes admitted jobs but accepts
    /// no new ones.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { limit } => {
                write!(f, "queue full: {limit} jobs already waiting")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Monotonic service counters, reported via [`ServeHandle::metrics`].
#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    submitted: u64,
    rejected: u64,
    computed: u64,
    hits_memory: u64,
    hits_disk: u64,
    coalesced: u64,
    failed: u64,
    cancelled: u64,
    cache_errors: u64,
    wall_ns_total: u64,
}

struct JobRecord {
    spec: Arc<ScenarioSpec>,
    digest: SpecDigest,
    state: JobState,
    cancel: CancelToken,
    admitted: Instant,
}

/// The in-flight registration for one digest: the job computing it and
/// the identical jobs waiting on that computation.
struct InFlight {
    followers: Vec<u64>,
}

struct State {
    next_id: u64,
    jobs: HashMap<u64, JobRecord>,
    queue: VecDeque<u64>,
    inflight: HashMap<u64, InFlight>,
    memory: HashMap<u64, Arc<CampaignReport>>,
    memory_order: VecDeque<u64>,
    counters: Counters,
    draining: bool,
}

struct Core {
    state: Mutex<State>,
    /// Signals dispatchers: queue non-empty, or draining.
    work: Condvar,
    /// Signals watchers: some job's state changed.
    settle: Condvar,
    executor: Executor,
    cache: Option<CacheDir>,
    queue_limit: usize,
    memory_entries: usize,
}

impl Core {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn memory_insert(&self, st: &mut State, digest: u64, report: Arc<CampaignReport>) {
        if self.memory_entries == 0 {
            return;
        }
        if !st.memory.contains_key(&digest) {
            st.memory_order.push_back(digest);
            if st.memory_order.len() > self.memory_entries {
                if let Some(evicted) = st.memory_order.pop_front() {
                    st.memory.remove(&evicted);
                }
            }
        }
        st.memory.insert(digest, report);
    }

    /// Moves job `id` to `Done`, building its `ScenarioReport` from its
    /// *own* spec and the shared campaign payload.
    fn resolve_done(
        &self,
        st: &mut State,
        id: u64,
        payload: &Arc<CampaignReport>,
        source: CacheSource,
    ) {
        if let Some(rec) = st.jobs.get_mut(&id) {
            if rec.state.is_terminal() {
                return;
            }
            let wall_ns = rec.admitted.elapsed().as_nanos() as u64;
            st.counters.wall_ns_total = st.counters.wall_ns_total.saturating_add(wall_ns);
            match source {
                CacheSource::Computed => st.counters.computed += 1,
                CacheSource::Memory => st.counters.hits_memory += 1,
                CacheSource::Disk => st.counters.hits_disk += 1,
                CacheSource::Coalesced => {}
            }
            rec.state = JobState::Done {
                report: Arc::new(ScenarioReport {
                    spec: (*rec.spec).clone(),
                    report: (**payload).clone(),
                }),
                source,
                wall_ns,
            };
        }
    }

    fn resolve_failed(&self, st: &mut State, id: u64, message: &str, cancelled: bool) {
        if let Some(rec) = st.jobs.get_mut(&id) {
            if rec.state.is_terminal() {
                return;
            }
            if cancelled {
                st.counters.cancelled += 1;
            } else {
                st.counters.failed += 1;
            }
            rec.state = JobState::Failed {
                message: message.to_string(),
            };
        }
    }
}

/// The cheap, clonable submission API. Every handle talks to the same
/// service; handles stay valid until the [`Serve`] they came from is
/// shut down (after which [`ServeHandle::submit`] returns
/// [`ServeError::ShuttingDown`]).
#[derive(Clone)]
pub struct ServeHandle {
    core: Arc<Core>,
}

impl ServeHandle {
    /// Submits a scenario for execution (or cache service).
    ///
    /// Returns a [`JobId`] immediately. Specs that fail validation, or
    /// that carry `observe`/`checkpoint` blocks (which write
    /// server-local files and conflict with executor scheduling), get a
    /// job in [`JobState::Rejected`] — query it like any other job.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] at the admission bound;
    /// [`ServeError::ShuttingDown`] once draining has begun. In both
    /// cases no job is created.
    pub fn submit(&self, spec: ScenarioSpec) -> Result<JobId, ServeError> {
        let rejection = if let Err(e) = spec.validate() {
            Some(e.to_string())
        } else if spec.observe.is_some() {
            Some(
                "observe blocks are not served: trace export writes server-local files; \
                  run such specs locally via qic::run"
                    .into(),
            )
        } else if spec.checkpoint.is_some() {
            Some(
                "checkpoint blocks are not served: the cache already makes reruns cheap; \
                  use qic::run_budgeted for resumable local execution"
                    .into(),
            )
        } else {
            None
        };
        let digest = SpecDigest::of(&spec);
        let mut st = self.core.lock();
        if st.draining {
            return Err(ServeError::ShuttingDown);
        }
        st.counters.submitted += 1;
        let queued = rejection.is_none();
        if queued && st.queue.len() >= self.core.queue_limit {
            return Err(ServeError::QueueFull {
                limit: self.core.queue_limit,
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        let state = match rejection {
            Some(reason) => {
                st.counters.rejected += 1;
                JobState::Rejected { reason }
            }
            None => JobState::Queued,
        };
        st.jobs.insert(
            id,
            JobRecord {
                spec: Arc::new(spec),
                digest,
                state,
                cancel: CancelToken::new(),
                admitted: Instant::now(),
            },
        );
        if queued {
            st.queue.push_back(id);
            drop(st);
            self.core.work.notify_one();
        } else {
            drop(st);
            self.core.settle.notify_all();
        }
        Ok(JobId(id))
    }

    /// A snapshot of the job's current state; `None` for unknown ids.
    pub fn status(&self, id: JobId) -> Option<JobState> {
        self.core.lock().jobs.get(&id.0).map(|r| r.state.clone())
    }

    /// Blocks until the job reaches a terminal state and returns it;
    /// `None` for unknown ids.
    pub fn wait(&self, id: JobId) -> Option<JobState> {
        let mut st = self.core.lock();
        loop {
            match st.jobs.get(&id.0) {
                None => return None,
                Some(rec) if rec.state.is_terminal() => return Some(rec.state.clone()),
                Some(_) => {
                    st = self.core.settle.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// Requests cancellation. Queued jobs fail immediately
    /// (`Failed{"cancelled"}`); running jobs stop claiming points —
    /// in-flight points finish first — and then fail; identical jobs
    /// coalesced onto a cancelled leader are requeued for their own
    /// attempt. Returns `false` if the job is unknown or already
    /// terminal.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut st = self.core.lock();
        let Some(rec) = st.jobs.get(&id.0) else {
            return false;
        };
        if matches!(rec.state, JobState::Running { .. }) {
            rec.cancel.cancel();
            return true;
        }
        if !matches!(rec.state, JobState::Queued) {
            return false;
        }
        st.queue.retain(|&q| q != id.0);
        for fl in st.inflight.values_mut() {
            fl.followers.retain(|&f| f != id.0);
        }
        self.core.resolve_failed(&mut st, id.0, "cancelled", true);
        drop(st);
        self.core.settle.notify_all();
        true
    }

    /// A `serve.*` metrics snapshot (monotonic counters plus current
    /// queue depth / in-flight count), in the workspace's dotted-name
    /// convention. Wall time lives here and in [`JobState::Done`] —
    /// never inside a report.
    pub fn metrics(&self) -> Metrics {
        let st = self.core.lock();
        let c = st.counters;
        Metrics::new()
            .with("serve.submitted", c.submitted as f64)
            .with("serve.rejected", c.rejected as f64)
            .with("serve.computed", c.computed as f64)
            .with("serve.hits.memory", c.hits_memory as f64)
            .with("serve.hits.disk", c.hits_disk as f64)
            .with("serve.coalesced", c.coalesced as f64)
            .with("serve.failed", c.failed as f64)
            .with("serve.cancelled", c.cancelled as f64)
            .with("serve.cache.errors", c.cache_errors as f64)
            .with("serve.queue.depth", st.queue.len() as f64)
            .with("serve.inflight", st.inflight.len() as f64)
            .with("serve.wall_ms.total", c.wall_ns_total as f64 / 1e6)
    }

    /// The executor's worker count (after `QIC_WORKERS`/auto
    /// resolution).
    pub fn workers(&self) -> usize {
        self.core.executor.workers()
    }
}

/// A running service instance: dispatcher threads plus the shared
/// executor. Dropping (or calling [`Serve::shutdown`]) drains
/// gracefully — admitted jobs finish, new submissions are refused.
pub struct Serve {
    core: Arc<Core>,
    dispatchers: Vec<JoinHandle<()>>,
}

impl Serve {
    /// Starts a service: spawns the executor and
    /// [`ServeConfig::parallel_jobs`] dispatcher threads.
    ///
    /// # Panics
    ///
    /// If a configured [`ServeConfig::cache_dir`] cannot be created —
    /// a service without its cache would silently recompute everything.
    pub fn start(config: ServeConfig) -> Serve {
        let cache = config
            .cache_dir
            .as_ref()
            .map(|dir| CacheDir::open(dir).unwrap_or_else(|e| panic!("opening result cache: {e}")));
        let core = Arc::new(Core {
            state: Mutex::new(State {
                next_id: 1,
                jobs: HashMap::new(),
                queue: VecDeque::new(),
                inflight: HashMap::new(),
                memory: HashMap::new(),
                memory_order: VecDeque::new(),
                counters: Counters::default(),
                draining: false,
            }),
            work: Condvar::new(),
            settle: Condvar::new(),
            executor: Executor::new(config.workers),
            cache,
            queue_limit: config.queue_limit.max(1),
            memory_entries: config.memory_entries,
        });
        let dispatchers = (0..config.parallel_jobs.max(1))
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("qic-serve-{i}"))
                    .spawn(move || dispatcher_loop(&core))
                    .expect("spawning dispatcher thread")
            })
            .collect();
        Serve { core, dispatchers }
    }

    /// A handle for submitting and querying jobs.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            core: Arc::clone(&self.core),
        }
    }

    /// Graceful drain: refuses new submissions, finishes every admitted
    /// job (queued and running), then joins the dispatchers.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        {
            let mut st = self.core.lock();
            st.draining = true;
        }
        self.core.work.notify_all();
        for handle in self.dispatchers.drain(..) {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
        self.core.settle.notify_all();
    }
}

impl Drop for Serve {
    fn drop(&mut self) {
        if !self.dispatchers.is_empty() {
            self.drain();
        }
    }
}

/// Per-job progress: mirrors point completions into
/// [`JobState::Running`] so `status`/`wait` watchers (and the JSONL
/// front-end) can stream them.
struct JobProgress {
    core: Arc<Core>,
    id: u64,
}

impl ProgressSink for JobProgress {
    fn on_finish(&self, _task: usize, _worker: usize, _wall_ns: u64) {
        {
            let mut st = self.core.lock();
            if let Some(rec) = st.jobs.get_mut(&self.id) {
                if let JobState::Running { done, .. } = &mut rec.state {
                    *done += 1;
                }
            }
        }
        self.core.settle.notify_all();
    }
}

fn dispatcher_loop(core: &Arc<Core>) {
    loop {
        // Claim the next queued job — or exit once draining finds the
        // queue empty (running jobs belong to other dispatchers).
        let id = {
            let mut st = core.lock();
            loop {
                if let Some(id) = st.queue.pop_front() {
                    break id;
                }
                if st.draining {
                    return;
                }
                st = core.work.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        serve_job(core, id);
        core.settle.notify_all();
    }
}

/// Drives one claimed job through cache lookup, coalescing, or compute.
fn serve_job(core: &Arc<Core>, id: u64) {
    // Phase 1 (locked): memory hit, single-flight registration, or
    // leadership.
    let (spec, digest, cancel) = {
        let mut st = core.lock();
        let Some(rec) = st.jobs.get(&id) else { return };
        if rec.state.is_terminal() {
            return; // cancelled between claim and here
        }
        let spec = Arc::clone(&rec.spec);
        let digest = rec.digest.as_u64();
        let cancel = rec.cancel.clone();
        if cancel.is_cancelled() {
            core.resolve_failed(&mut st, id, "cancelled", true);
            return;
        }
        if let Some(payload) = st.memory.get(&digest).cloned() {
            core.resolve_done(&mut st, id, &payload, CacheSource::Memory);
            return;
        }
        if let Some(fl) = st.inflight.get_mut(&digest) {
            // Identical job already executing: wait on it instead of
            // re-running (single-flight). This dispatcher is free.
            fl.followers.push(id);
            st.counters.coalesced += 1;
            return;
        }
        st.inflight.insert(digest, InFlight { followers: vec![] });
        let total = spec.param_space().len();
        if let Some(rec) = st.jobs.get_mut(&id) {
            rec.state = JobState::Running { done: 0, total };
        }
        (spec, digest, cancel)
    };

    // Phase 2 (unlocked): the disk tier. Corruption of any flavour is a
    // *structured miss* — counted, then recomputed.
    if let Some(cache) = &core.cache {
        match cache.load(&spec) {
            Ok(Some(report)) => {
                let payload = Arc::new(report);
                let mut st = core.lock();
                core.memory_insert(&mut st, digest, Arc::clone(&payload));
                core.resolve_done(&mut st, id, &payload, CacheSource::Disk);
                settle_followers(core, &mut st, digest, &payload);
                return;
            }
            Ok(None) => {}
            Err(_) => {
                core.lock().counters.cache_errors += 1;
            }
        }
    }

    // Phase 3 (unlocked): compute on the shared executor. Panics are
    // contained to this job; the pool and the other dispatchers
    // survive.
    let progress = Arc::new(JobProgress {
        core: Arc::clone(core),
        id,
    });
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        scenario::run_on_cancellable(&spec, &core.executor, progress, &cancel)
    }));
    match outcome {
        Ok(Ok(Some(report))) => {
            let payload = Arc::new(report.report);
            if let Some(cache) = &core.cache {
                if cache.store(&spec, &payload).is_err() {
                    core.lock().counters.cache_errors += 1;
                }
            }
            let mut st = core.lock();
            core.memory_insert(&mut st, digest, Arc::clone(&payload));
            core.resolve_done(&mut st, id, &payload, CacheSource::Computed);
            settle_followers(core, &mut st, digest, &payload);
        }
        Ok(Ok(None)) => {
            // Cancelled mid-run. Followers asked for the same result
            // but did not ask to cancel — requeue each for its own
            // attempt.
            let mut st = core.lock();
            core.resolve_failed(&mut st, id, "cancelled", true);
            requeue_followers(core, &mut st, digest);
        }
        Ok(Err(e)) => {
            // Validation passed at submit, so this is unexpected — but
            // deterministic: identical followers would fail identically.
            let message = e.to_string();
            let mut st = core.lock();
            core.resolve_failed(&mut st, id, &message, false);
            if let Some(fl) = st.inflight.remove(&digest) {
                for follower in fl.followers {
                    core.resolve_failed(&mut st, follower, &message, false);
                }
            }
        }
        Err(payload) => {
            let message = panic_message(payload.as_ref());
            let mut st = core.lock();
            core.resolve_failed(
                &mut st,
                id,
                &format!("evaluation panicked: {message}"),
                false,
            );
            // A panic may be environmental — give followers their own
            // attempt (bounded: each job computes at most once).
            requeue_followers(core, &mut st, digest);
        }
    }
}

/// Resolves every follower of `digest` with the finished payload and
/// clears the in-flight registration.
fn settle_followers(core: &Core, st: &mut State, digest: u64, payload: &Arc<CampaignReport>) {
    if let Some(fl) = st.inflight.remove(&digest) {
        for follower in fl.followers {
            core.resolve_done(st, follower, payload, CacheSource::Coalesced);
        }
    }
}

/// Pushes every follower of `digest` back to the queue front (they were
/// admitted earlier than anything behind them) and clears the
/// registration.
fn requeue_followers(core: &Arc<Core>, st: &mut State, digest: u64) {
    if let Some(fl) = st.inflight.remove(&digest) {
        let n = fl.followers.len();
        for follower in fl.followers.into_iter().rev() {
            st.queue.push_front(follower);
        }
        for _ in 0..n {
            core.work.notify_one();
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
