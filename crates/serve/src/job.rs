//! Job identity and lifecycle: [`JobId`], [`JobState`], [`CacheSource`].

use std::fmt;
use std::sync::Arc;

use qic_core::scenario::ScenarioReport;

/// A submitted job's identity: dense, process-local, never reused.
/// [`fmt::Display`] renders the wire form the JSONL front-end uses
/// (`job-7`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Where a completed job's report came from.
///
/// Provenance is observability, not identity: the engine's determinism
/// contract means the report bytes are the same whichever variant
/// served them (the regression tests pin this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheSource {
    /// Evaluated on the shared executor by this job.
    Computed,
    /// Served from the in-memory cache.
    Memory,
    /// Loaded (and verified) from the on-disk [`crate::CacheDir`].
    Disk,
    /// Coalesced onto an identical job that was already in flight
    /// (single-flight): this job never executed anything.
    Coalesced,
}

impl CacheSource {
    /// The wire label (`computed` / `memory` / `disk` / `coalesced`).
    pub fn label(self) -> &'static str {
        match self {
            CacheSource::Computed => "computed",
            CacheSource::Memory => "memory",
            CacheSource::Disk => "disk",
            CacheSource::Coalesced => "coalesced",
        }
    }
}

/// A job's lifecycle state.
///
/// Terminal states (`Done` / `Failed` / `Rejected`) never change once
/// entered; [`crate::ServeHandle::wait`] blocks until one is reached.
/// Cancellation surfaces as `Failed` with a `"cancelled"` message —
/// cancelling is a way for a run to fail, not a seventh state.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Admitted, waiting for a dispatcher.
    Queued,
    /// Executing on the shared pool; `done` of `total` points finished.
    Running {
        /// Points completed so far.
        done: usize,
        /// Points in the scenario's sweep.
        total: usize,
    },
    /// Finished; the report plus its provenance.
    Done {
        /// The scenario report. Its `spec` is *this* job's submission;
        /// the campaign payload may be shared with other jobs of the
        /// same digest (byte-identical by the determinism contract).
        report: Arc<ScenarioReport>,
        /// Where the report came from.
        source: CacheSource,
        /// Serve-side wall clock from admission to completion, in
        /// nanoseconds. Deliberately **outside** the report — cached
        /// and freshly computed reports compare equal and emit
        /// identical JSON/CSV (the `wall_ns` exclusion contract).
        wall_ns: u64,
    },
    /// The run did not produce a report (evaluation panicked, or the
    /// job was cancelled).
    Failed {
        /// What went wrong.
        message: String,
    },
    /// Refused at submission: the spec failed validation, or carries a
    /// block the service does not execute (`observe` / `checkpoint`).
    Rejected {
        /// Why the spec was refused.
        reason: String,
    },
}

impl JobState {
    /// `true` once the state can no longer change.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done { .. } | JobState::Failed { .. } | JobState::Rejected { .. }
        )
    }

    /// The wire label (`queued` / `running` / `done` / `failed` /
    /// `rejected`).
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running { .. } => "running",
            JobState::Done { .. } => "done",
            JobState::Failed { .. } => "failed",
            JobState::Rejected { .. } => "rejected",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_labels_are_wire_stable() {
        assert_eq!(JobId(7).to_string(), "job-7");
        assert_eq!(CacheSource::Memory.label(), "memory");
        assert_eq!(CacheSource::Computed.label(), "computed");
        assert_eq!(JobState::Queued.label(), "queued");
        assert!(!JobState::Queued.is_terminal());
        assert!(JobState::Failed {
            message: "x".into()
        }
        .is_terminal());
    }
}
