//! Service-level guarantees: single-flight, cache-hit byte identity
//! against direct `qic_core::scenario::run`, backpressure, cancellation,
//! graceful drain, rejection, disk persistence across instances,
//! corruption recovery, and the JSONL front-end.

use std::io::Cursor;
use std::path::PathBuf;

use qic_core::scenario::{
    self, CheckpointSpec, ObserveSpec, ScenarioRegistry, ScenarioScale, ScenarioSpec,
};
use qic_serve::{serve_lines, CacheSource, JobState, Serve, ServeConfig, ServeError};

fn preset(name: &str) -> ScenarioSpec {
    ScenarioRegistry::builtin()
        .spec(name, ScenarioScale::SmallTest)
        .unwrap_or_else(|| panic!("{name} is registered"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qic_serve_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn done(state: JobState) -> (std::sync::Arc<scenario::ScenarioReport>, CacheSource) {
    match state {
        JobState::Done { report, source, .. } => (report, source),
        other => panic!("expected Done, got {other:?}"),
    }
}

/// A spec that takes long enough to keep the queue occupied while a
/// test submits behind it: many replicates of a simulated workload.
fn slow_spec(tag: &str) -> ScenarioSpec {
    let mut spec = preset("design_space").with_replicates(24);
    spec.name = format!("slow_{tag}");
    spec
}

#[test]
fn identical_submissions_execute_once_and_match_direct_run() {
    let serve = Serve::start(ServeConfig::default().with_parallel_jobs(4));
    let handle = serve.handle();
    let spec = preset("design_space");
    let direct = scenario::run(&spec).expect("direct run");

    let jobs: Vec<_> = (0..4)
        .map(|_| handle.submit(spec.clone()).expect("admitted"))
        .collect();
    let mut computed = 0;
    for &job in &jobs {
        let (report, source) = done(handle.wait(job).expect("known job"));
        if source == CacheSource::Computed {
            computed += 1;
        }
        // The serve result is byte-identical to the direct run — cache
        // hit, coalesced, or computed alike.
        assert_eq!(report.report, direct.report);
        assert_eq!(report.report.to_json(), direct.report.to_json());
        assert_eq!(report.report.to_csv(), direct.report.to_csv());
        assert_eq!(
            report.report.to_record_json(),
            direct.report.to_record_json()
        );
        assert_eq!(report.spec, spec, "each job keeps its own spec");
    }
    assert_eq!(computed, 1, "identical submissions execute exactly once");
    let metrics = handle.metrics();
    assert_eq!(metrics.get("serve.computed"), Some(1.0));
    assert_eq!(
        metrics.get("serve.coalesced").unwrap_or(0.0)
            + metrics.get("serve.hits.memory").unwrap_or(0.0),
        3.0,
        "the other three coalesced or hit the memory cache: {metrics:?}"
    );
    serve.shutdown();
}

#[test]
fn backpressure_surfaces_as_queue_full() {
    let serve = Serve::start(
        ServeConfig::default()
            .with_parallel_jobs(1)
            .with_queue_limit(2),
    );
    let handle = serve.handle();
    // Occupy the single dispatcher with a slow job (wait for it to be
    // claimed — until then it still sits in the queue) …
    let running = handle.submit(slow_spec("backpressure")).expect("admitted");
    while matches!(handle.status(running), Some(JobState::Queued)) {
        std::thread::yield_now();
    }
    // … then fill the queue with distinct quick specs.
    let q1 = handle
        .submit(preset("design_space").with_seed(101))
        .expect("queue slot 1");
    let q2 = handle
        .submit(preset("design_space").with_seed(102))
        .expect("queue slot 2");
    let err = handle
        .submit(preset("design_space").with_seed(103))
        .expect_err("the bound pushes back");
    assert_eq!(err, ServeError::QueueFull { limit: 2 });
    assert_eq!(err.to_string(), "queue full: 2 jobs already waiting");
    // Draining still finishes everything that was admitted.
    for job in [running, q1, q2] {
        assert!(handle.wait(job).expect("known").is_terminal());
    }
    serve.shutdown();
}

#[test]
fn cancelling_a_queued_job_fails_it_without_running() {
    let serve = Serve::start(ServeConfig::default().with_parallel_jobs(1));
    let handle = serve.handle();
    let running = handle.submit(slow_spec("cancel_queued")).expect("admitted");
    while matches!(handle.status(running), Some(JobState::Queued)) {
        std::thread::yield_now();
    }
    let queued = handle
        .submit(preset("design_space").with_seed(7))
        .expect("admitted");
    assert!(handle.cancel(queued), "queued jobs are cancellable");
    match handle.wait(queued).expect("known") {
        JobState::Failed { message } => assert_eq!(message, "cancelled"),
        other => panic!("expected Failed(cancelled), got {other:?}"),
    }
    let (_, source) = done(handle.wait(running).expect("known"));
    assert_eq!(source, CacheSource::Computed);
    assert!(
        !handle.cancel(queued),
        "terminal jobs are no longer cancellable"
    );
    assert_eq!(handle.metrics().get("serve.cancelled"), Some(1.0));
    serve.shutdown();
}

#[test]
fn shutdown_drains_admitted_jobs_then_refuses_new_ones() {
    let serve = Serve::start(ServeConfig::default().with_parallel_jobs(1));
    let handle = serve.handle();
    let jobs: Vec<_> = (0..3)
        .map(|i| {
            handle
                .submit(preset("design_space").with_seed(200 + i))
                .expect("admitted")
        })
        .collect();
    serve.shutdown();
    for job in jobs {
        let (_, source) = done(handle.wait(job).expect("known"));
        assert_eq!(source, CacheSource::Computed, "drained, not dropped");
    }
    assert_eq!(
        handle.submit(preset("design_space")).unwrap_err(),
        ServeError::ShuttingDown
    );
}

#[test]
fn bad_specs_are_rejected_with_reasons() {
    let serve = Serve::start(ServeConfig::default());
    let handle = serve.handle();
    // Validation failure.
    let mut invalid = preset("design_space");
    invalid.replicates = 0;
    let job = handle.submit(invalid).expect("rejection is a job state");
    match handle.wait(job).expect("known") {
        JobState::Rejected { reason } => {
            assert!(reason.contains("replicate"), "{reason}")
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    // Observe and checkpoint blocks are service-policy rejections.
    let observed = preset("design_space").with_observe(ObserveSpec::to_dir("target/serve_obs"));
    match handle.wait(handle.submit(observed).unwrap()).unwrap() {
        JobState::Rejected { reason } => assert!(reason.contains("observe"), "{reason}"),
        other => panic!("{other:?}"),
    }
    let ckpt = preset("design_space").with_checkpoint(CheckpointSpec::to_dir("target/serve_ckpt"));
    match handle.wait(handle.submit(ckpt).unwrap()).unwrap() {
        JobState::Rejected { reason } => assert!(reason.contains("checkpoint"), "{reason}"),
        other => panic!("{other:?}"),
    }
    assert_eq!(handle.metrics().get("serve.rejected"), Some(3.0));
    serve.shutdown();
}

#[test]
fn disk_cache_serves_across_instances_and_survives_corruption() {
    let dir = tmpdir("disk_cache");
    let spec = preset("topology_faceoff");
    let direct = scenario::run(&spec).expect("direct run");

    // Instance A computes and persists.
    let serve = Serve::start(ServeConfig::default().with_cache_dir(&dir));
    let handle = serve.handle();
    let (fresh, source) = done(handle.wait(handle.submit(spec.clone()).unwrap()).unwrap());
    assert_eq!(source, CacheSource::Computed);
    // Resubmission hits memory.
    let (cached, source) = done(handle.wait(handle.submit(spec.clone()).unwrap()).unwrap());
    assert_eq!(source, CacheSource::Memory);
    // The wall_ns exclusion contract: cached and fresh reports compare
    // equal and emit identical JSON/CSV, and both match the direct run.
    assert_eq!(cached.report, fresh.report);
    assert_eq!(cached.report.to_json(), fresh.report.to_json());
    assert_eq!(cached.report.to_csv(), fresh.report.to_csv());
    assert_eq!(cached.report.to_json(), direct.report.to_json());
    serve.shutdown();

    // Instance B (fresh memory) hits the disk record.
    let serve = Serve::start(ServeConfig::default().with_cache_dir(&dir));
    let handle = serve.handle();
    let (disk, source) = done(handle.wait(handle.submit(spec.clone()).unwrap()).unwrap());
    assert_eq!(source, CacheSource::Disk);
    assert_eq!(disk.report, direct.report);
    assert_eq!(disk.report.to_json(), direct.report.to_json());
    serve.shutdown();

    // Truncate the record: instance C must recompute (a structured
    // miss), never serve a wrong report.
    let record = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "json"))
        .expect("a cached record");
    let bytes = std::fs::read(&record).unwrap();
    std::fs::write(&record, &bytes[..bytes.len() / 3]).unwrap();
    let serve = Serve::start(ServeConfig::default().with_cache_dir(&dir));
    let handle = serve.handle();
    let (recomputed, source) = done(handle.wait(handle.submit(spec.clone()).unwrap()).unwrap());
    assert_eq!(source, CacheSource::Computed, "corrupt record → recompute");
    assert_eq!(recomputed.report.to_json(), direct.report.to_json());
    assert_eq!(handle.metrics().get("serve.cache.errors"), Some(1.0));
    serve.shutdown();

    // The recompute healed the record: instance D hits disk again.
    let serve = Serve::start(ServeConfig::default().with_cache_dir(&dir));
    let handle = serve.handle();
    let (_, source) = done(handle.wait(handle.submit(spec).unwrap()).unwrap());
    assert_eq!(source, CacheSource::Disk);
    serve.shutdown();
}

#[test]
fn memory_cache_evicts_fifo_at_capacity() {
    let serve = Serve::start(ServeConfig::default().with_memory_entries(1));
    let handle = serve.handle();
    let a = preset("design_space").with_seed(1);
    let b = preset("design_space").with_seed(2);
    let (_, s) = done(handle.wait(handle.submit(a.clone()).unwrap()).unwrap());
    assert_eq!(s, CacheSource::Computed);
    let (_, s) = done(handle.wait(handle.submit(b).unwrap()).unwrap());
    assert_eq!(s, CacheSource::Computed);
    // `a` was evicted by `b` (capacity 1, FIFO) — recomputed, since no
    // disk tier is configured.
    let (_, s) = done(handle.wait(handle.submit(a).unwrap()).unwrap());
    assert_eq!(s, CacheSource::Computed);
    serve.shutdown();
}

#[test]
fn jsonl_front_end_round_trips_submissions_and_reports_cache_hits() {
    let out = tmpdir("front_out");
    let serve = Serve::start(ServeConfig::default());
    let handle = serve.handle();
    let script = concat!(
        "{\"op\": \"submit\", \"preset\": \"design_space\", \"scale\": \"small\"}\n",
        "{\"op\": \"wait\", \"job\": 1}\n",
        "{\"op\": \"submit\", \"preset\": \"design_space\", \"scale\": \"small\"}\n",
        "{\"op\": \"wait\", \"job\": 2}\n",
        "{\"op\": \"status\", \"job\": 99}\n",
        "{\"op\": \"nonsense\"}\n",
        "{\"op\": \"metrics\"}\n",
        "{\"op\": \"shutdown\"}\n",
    );
    let mut output = Vec::new();
    serve_lines(&handle, Cursor::new(script), &mut output, Some(&out)).expect("session runs");
    serve.shutdown();
    let text = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines[0].contains("\"event\": \"submitted\""),
        "{}",
        lines[0]
    );
    let first_result = lines
        .iter()
        .find(|l| l.contains("\"event\": \"result\"") && l.contains("\"job\": 1"))
        .expect("first wait resolves");
    assert!(
        first_result.contains("\"source\": \"computed\""),
        "{first_result}"
    );
    let second_result = lines
        .iter()
        .find(|l| l.contains("\"event\": \"result\"") && l.contains("\"job\": 2"))
        .expect("second wait resolves");
    assert!(
        second_result.contains("\"source\": \"memory\"")
            || second_result.contains("\"source\": \"coalesced\""),
        "resubmission is a cache hit: {second_result}"
    );
    assert!(lines
        .iter()
        .any(|l| l.contains("\"error\": \"unknown_job\"")));
    assert!(lines
        .iter()
        .any(|l| l.contains("\"error\": \"bad_request\"")));
    assert!(lines
        .iter()
        .any(|l| l.contains("\"event\": \"metrics\"") && l.contains("\"serve.computed\": 1")));
    assert_eq!(lines.last(), Some(&"{\"event\": \"bye\"}"));

    // The out-dir artifacts are byte-identical across the two jobs and
    // match a direct run's record JSON.
    let a = std::fs::read_to_string(out.join("job-1.json")).unwrap();
    let b = std::fs::read_to_string(out.join("job-2.json")).unwrap();
    assert_eq!(a, b);
    let direct = scenario::run(&preset("design_space")).unwrap();
    assert_eq!(a, direct.report.to_record_json());
    assert_eq!(
        std::fs::read_to_string(out.join("job-1.csv")).unwrap(),
        direct.to_csv()
    );
}
