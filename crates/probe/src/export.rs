//! Exporters: JSONL event log and Chrome-trace/Perfetto `trace.json`.
//!
//! Both emitters are pure functions of the recorded event stream with a
//! fixed field order, so the same run always produces the same bytes.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::record::{RecordingProbe, TraceEventKind};
use crate::StallCause;

/// Chrome-trace "process" ids — one per resource class.
const PID_TELEPORTERS: u32 = 0;
const PID_LINKS: u32 = 1;
const PID_PURIFIERS: u32 = 2;
const PID_STORAGE: u32 = 3;
const PID_COMMS: u32 = 4;

impl RecordingProbe {
    /// Serializes the recorded event stream as JSON Lines: one object
    /// per event, fields in a fixed order (`t_ns`, `ev`, payload).
    /// Deterministic — recording the same configuration twice yields
    /// identical bytes.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events().len() * 64);
        for ev in self.events() {
            let t = ev.t_ns;
            match ev.kind {
                TraceEventKind::Submit { comm, hops } => {
                    let _ = writeln!(
                        out,
                        "{{\"t_ns\":{t},\"ev\":\"submit\",\"comm\":{comm},\"hops\":{hops}}}"
                    );
                }
                TraceEventKind::Reroute { comm } => {
                    let _ = writeln!(out, "{{\"t_ns\":{t},\"ev\":\"reroute\",\"comm\":{comm}}}");
                }
                TraceEventKind::Stall {
                    cause,
                    resource,
                    comm,
                } => {
                    let _ = writeln!(
                        out,
                        "{{\"t_ns\":{t},\"ev\":\"stall\",\"cause\":\"{}\",\"resource\":{resource},\"comm\":{comm}}}",
                        cause.label()
                    );
                }
                TraceEventKind::WireTake { link } => {
                    let _ = writeln!(out, "{{\"t_ns\":{t},\"ev\":\"wire_take\",\"link\":{link}}}");
                }
                TraceEventKind::HopFire {
                    comm,
                    pos,
                    link,
                    teleset,
                    service_ns,
                } => {
                    let _ = writeln!(
                        out,
                        "{{\"t_ns\":{t},\"ev\":\"hop_fire\",\"comm\":{comm},\"pos\":{pos},\"link\":{link},\"teleset\":{teleset},\"service_ns\":{service_ns}}}"
                    );
                }
                TraceEventKind::TelesetRelease { teleset } => {
                    let _ = writeln!(
                        out,
                        "{{\"t_ns\":{t},\"ev\":\"teleset_release\",\"teleset\":{teleset}}}"
                    );
                }
                TraceEventKind::Storage { storage, used } => {
                    let _ = writeln!(
                        out,
                        "{{\"t_ns\":{t},\"ev\":\"storage\",\"storage\":{storage},\"used\":{used}}}"
                    );
                }
                TraceEventKind::PurifyStart {
                    site,
                    comm,
                    ops,
                    dur_ns,
                } => {
                    let _ = writeln!(
                        out,
                        "{{\"t_ns\":{t},\"ev\":\"purify_start\",\"site\":{site},\"comm\":{comm},\"ops\":{ops},\"dur_ns\":{dur_ns}}}"
                    );
                }
                TraceEventKind::Drop { comm } => {
                    let _ = writeln!(out, "{{\"t_ns\":{t},\"ev\":\"drop\",\"comm\":{comm}}}");
                }
                TraceEventKind::Done { comm, issued_ns } => {
                    let _ = writeln!(
                        out,
                        "{{\"t_ns\":{t},\"ev\":\"done\",\"comm\":{comm},\"issued_ns\":{issued_ns}}}"
                    );
                }
            }
        }
        out
    }

    /// Serializes the recorded run in the Chrome trace-event format
    /// (loads in Perfetto / `chrome://tracing`).
    ///
    /// Resource classes map to trace "processes": teleporter pools
    /// (pid 0, one thread per pool), links (pid 1), purifier sites
    /// (pid 2), storage banks (pid 3, occupancy counters), and
    /// communications (pid 4, one lifetime span each). Timestamps are
    /// simulation nanoseconds expressed in the format's microsecond
    /// unit, so traces are deterministic.
    pub fn chrome_trace(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        // Which tids are actually used, per pid, so metadata stays
        // limited to tracks that exist.
        let mut tele_tids = BTreeSet::new();
        let mut link_tids = BTreeSet::new();
        let mut puri_tids = BTreeSet::new();
        let mut store_tids = BTreeSet::new();
        let mut comm_tids = BTreeSet::new();

        // Pre-pass: communication lifetimes (submit → done/drop).
        let mut comm_spans: Vec<(u32, u64, Option<u64>, bool)> = Vec::new();
        for ev in self.events() {
            match ev.kind {
                TraceEventKind::Submit { comm, .. } => {
                    comm_spans.push((comm, ev.t_ns, None, false));
                }
                TraceEventKind::Done { comm, .. } => {
                    if let Some(c) = comm_spans.get_mut(comm as usize) {
                        c.2 = Some(ev.t_ns);
                    }
                }
                TraceEventKind::Drop { comm } => {
                    if let Some(c) = comm_spans.get_mut(comm as usize) {
                        c.2 = Some(ev.t_ns);
                        c.3 = true;
                    }
                }
                _ => {}
            }
        }

        for ev in self.events() {
            let ts = us(ev.t_ns);
            match ev.kind {
                TraceEventKind::HopFire {
                    comm,
                    pos,
                    link,
                    teleset,
                    service_ns,
                } => {
                    tele_tids.insert(teleset);
                    events.push(format!(
                        "{{\"name\":\"hop c{comm}.{pos}\",\"cat\":\"teleport\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\"pid\":{PID_TELEPORTERS},\"tid\":{teleset},\"args\":{{\"comm\":{comm},\"pos\":{pos},\"link\":{link}}}}}",
                        us(service_ns)
                    ));
                }
                TraceEventKind::WireTake { link } => {
                    link_tids.insert(link);
                    events.push(format!(
                        "{{\"name\":\"pair\",\"cat\":\"wire\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{PID_LINKS},\"tid\":{link}}}"
                    ));
                }
                TraceEventKind::Stall {
                    cause,
                    resource,
                    comm,
                } => {
                    let pid = match cause {
                        StallCause::Teleporter => {
                            tele_tids.insert(resource);
                            PID_TELEPORTERS
                        }
                        StallCause::Wire => {
                            link_tids.insert(resource);
                            PID_LINKS
                        }
                        StallCause::Storage => {
                            store_tids.insert(resource);
                            PID_STORAGE
                        }
                    };
                    events.push(format!(
                        "{{\"name\":\"stall {}\",\"cat\":\"stall\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{pid},\"tid\":{resource},\"args\":{{\"comm\":{comm}}}}}",
                        cause.label()
                    ));
                }
                TraceEventKind::PurifyStart {
                    site,
                    comm,
                    ops,
                    dur_ns,
                } => {
                    puri_tids.insert(site);
                    events.push(format!(
                        "{{\"name\":\"purify c{comm}\",\"cat\":\"purify\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\"pid\":{PID_PURIFIERS},\"tid\":{site},\"args\":{{\"ops\":{ops}}}}}",
                        us(dur_ns)
                    ));
                }
                TraceEventKind::Storage { storage, used } => {
                    store_tids.insert(storage);
                    events.push(format!(
                        "{{\"name\":\"occupancy\",\"cat\":\"storage\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{PID_STORAGE},\"tid\":{storage},\"args\":{{\"used\":{used}}}}}"
                    ));
                }
                _ => {}
            }
        }

        for &(comm, start, end, dropped) in &comm_spans {
            let Some(end) = end else { continue };
            comm_tids.insert(comm);
            let name = if dropped { "dropped" } else { "comm" };
            events.push(format!(
                "{{\"name\":\"{name} {comm}\",\"cat\":\"comm\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{PID_COMMS},\"tid\":{comm}}}",
                us(start),
                us(end.saturating_sub(start))
            ));
        }

        // Metadata: process names, plus a thread name per used track.
        let mut meta: Vec<String> = Vec::new();
        let port_classes = self.fabric().map_or(0, |f| f.port_classes).max(1);
        let mut process = |pid: u32, label: &str| {
            meta.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{label}\"}}}}"
            ));
        };
        process(PID_TELEPORTERS, "teleporters");
        process(PID_LINKS, "links");
        process(PID_PURIFIERS, "purifiers");
        process(PID_STORAGE, "storage");
        process(PID_COMMS, "communications");
        let mut thread = |pid: u32, tid: u32, label: String| {
            meta.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{label}\"}}}}"
            ));
        };
        for &t in &tele_tids {
            thread(
                PID_TELEPORTERS,
                t,
                format!("n{}.c{}", t / port_classes, t % port_classes),
            );
        }
        for &l in &link_tids {
            thread(PID_LINKS, l, format!("link{l}"));
        }
        for &s in &puri_tids {
            thread(PID_PURIFIERS, s, format!("site{s}"));
        }
        for &b in &store_tids {
            thread(PID_STORAGE, b, format!("bank{b}"));
        }
        for &c in &comm_tids {
            thread(PID_COMMS, c, format!("comm{c}"));
        }

        let mut out = String::with_capacity(64 + meta.len() * 80 + events.len() * 120);
        out.push_str("{\"traceEvents\":[");
        for (i, e) in meta.iter().chain(events.iter()).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(e);
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Nanoseconds → the trace format's microsecond unit, exactly (three
/// decimal digits suffice: 1 ns = 0.001 µs).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

#[cfg(test)]
mod tests {
    use crate::schema;
    use crate::{FabricInfo, Probe, RecordingProbe, StallCause};

    fn sample_probe() -> RecordingProbe {
        let mut p = RecordingProbe::new();
        p.on_fabric(&FabricInfo {
            topology: "mesh".into(),
            width: 2,
            height: 1,
            nodes: 2,
            links: 1,
            port_classes: 2,
            ports_per_node: 2,
            teleset_capacity: vec![2, 2, 2, 2],
            storage_capacity: 2,
            purifier_units: 1,
        });
        p.on_submit(0, 0, 1);
        p.on_stall(5, StallCause::Wire, 0, 0);
        p.on_wire_take(10, 0);
        p.on_hop_fire(10, 0, 0, 0, 2, 800);
        p.on_storage(10, 1, 1);
        p.on_teleset_release(810, 2);
        p.on_purify_start(810, 1, 0, 2, 400);
        p.on_storage(1210, 1, 0);
        p.on_comm_done(1500, 0, 0);
        p
    }

    #[test]
    fn jsonl_is_deterministic_and_valid() {
        let p = sample_probe();
        let a = p.events_jsonl();
        let b = sample_probe().events_jsonl();
        assert_eq!(a, b);
        let lines = schema::validate_events_jsonl(&a).expect("jsonl validates");
        assert_eq!(lines, p.events().len() as u64);
    }

    #[test]
    fn chrome_trace_is_deterministic_and_valid() {
        let p = sample_probe();
        let a = p.chrome_trace();
        assert_eq!(a, sample_probe().chrome_trace());
        let n = schema::validate_chrome_trace(&a).expect("trace validates");
        assert!(n > 0);
        // Spot-check the track naming uses the fabric's port classes.
        assert!(a.contains("\"n1.c0\""), "teleset tid 2 labels as n1.c0");
    }

    #[test]
    fn microsecond_rendering_is_exact() {
        assert_eq!(super::us(0), "0.000");
        assert_eq!(super::us(1), "0.001");
        assert_eq!(super::us(1500), "1.500");
        assert_eq!(super::us(1_000_000), "1000.000");
    }

    #[test]
    fn empty_probe_exports_parse() {
        let p = RecordingProbe::new();
        assert_eq!(schema::validate_events_jsonl(&p.events_jsonl()), Ok(0));
        schema::validate_chrome_trace(&p.chrome_trace()).expect("empty trace validates");
    }
}
