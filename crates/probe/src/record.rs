//! The recording probe and its deterministic time-series report.

use serde::{Deserialize, Serialize};

use qic_des::metrics::Metrics;

use crate::{EventKind, FabricInfo, Probe, StallCause};

/// One recorded structured event: a simulation timestamp plus the
/// hook-specific payload. The stream is chronological by construction
/// (simulation time is monotone) and fully deterministic for a given
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulation time in nanoseconds.
    pub t_ns: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Payload of a [`TraceEvent`]. Resource ids follow the
/// [`FabricInfo`] indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// A communication entered the system.
    Submit {
        /// Communication id (dense, submission order).
        comm: u32,
        /// Routed hop count (0 = co-located or unreachable).
        hops: u32,
    },
    /// A submission detoured beyond the healthy minimal distance.
    Reroute {
        /// Communication id.
        comm: u32,
    },
    /// A pair-hop stalled on a resource.
    Stall {
        /// Which resource class blocked.
        cause: StallCause,
        /// Dense resource index within its class.
        resource: u32,
        /// Communication id of the blocked pair.
        comm: u32,
    },
    /// One EPR pair was consumed from a link wire.
    WireTake {
        /// Link index.
        link: u32,
    },
    /// A pair-hop committed; the teleporter slot span starts here.
    HopFire {
        /// Communication id.
        comm: u32,
        /// Hop position along the route.
        pos: u32,
        /// Link crossed.
        link: u32,
        /// Teleporter pool held.
        teleset: u32,
        /// Hold duration in nanoseconds.
        service_ns: u64,
    },
    /// A teleporter slot was released.
    TelesetRelease {
        /// Teleporter pool index.
        teleset: u32,
    },
    /// A storage bank's occupancy changed.
    Storage {
        /// Storage bank index.
        storage: u32,
        /// Cells used after the change.
        used: u32,
    },
    /// A purification cascade job started; the unit span starts here.
    PurifyStart {
        /// Purifier site (node index).
        site: u32,
        /// Communication id.
        comm: u32,
        /// Purify operations in the job.
        ops: u32,
        /// Job duration in nanoseconds.
        dur_ns: u64,
    },
    /// A communication dropped (`Unreachable`).
    Drop {
        /// Communication id.
        comm: u32,
    },
    /// A communication's data teleport completed.
    Done {
        /// Communication id.
        comm: u32,
        /// Submission time in nanoseconds.
        issued_ns: u64,
    },
}

/// Event-dispatch counters, one per simulator event class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DispatchCounts {
    /// `SourceTry` dispatches.
    pub source_try: u64,
    /// `TeleportDone` dispatches.
    pub teleport_done: u64,
    /// `WireWake` dispatches.
    pub wire_wake: u64,
    /// `PurifyDone` dispatches.
    pub purify_done: u64,
    /// `DataTeleportDone` dispatches.
    pub data_teleport_done: u64,
    /// `Dropped` dispatches.
    pub dropped: u64,
    /// `Submit` dispatches.
    pub submit: u64,
    /// `Notify` dispatches.
    pub notify: u64,
}

impl DispatchCounts {
    fn bump(&mut self, kind: EventKind) {
        match kind {
            EventKind::SourceTry => self.source_try += 1,
            EventKind::TeleportDone => self.teleport_done += 1,
            EventKind::WireWake => self.wire_wake += 1,
            EventKind::PurifyDone => self.purify_done += 1,
            EventKind::DataTeleportDone => self.data_teleport_done += 1,
            EventKind::Dropped => self.dropped += 1,
            EventKind::Submit => self.submit += 1,
            EventKind::Notify => self.notify += 1,
        }
    }

    /// Total events dispatched.
    pub fn total(&self) -> u64 {
        self.source_try
            + self.teleport_done
            + self.wire_wake
            + self.purify_done
            + self.data_teleport_done
            + self.dropped
            + self.submit
            + self.notify
    }
}

/// Stall-cause breakdown counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StallBreakdown {
    /// Stalls waiting for a teleporter slot.
    pub teleporter: u64,
    /// Stalls waiting for a link pair.
    pub wire: u64,
    /// Stalls waiting for downstream storage.
    pub storage: u64,
}

/// One teleport-hop span of a communication's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopSpan {
    /// Hop position along the route.
    pub pos: u32,
    /// Link crossed.
    pub link: u32,
    /// Span start (simulation nanoseconds).
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub service_ns: u64,
}

/// Per-communication timeline: submission, every pair-hop fired on its
/// behalf, and how it ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommTimeline {
    /// Communication id.
    pub comm: u32,
    /// Submission time in nanoseconds.
    pub submitted_ns: u64,
    /// Routed hop count at submission.
    pub route_hops: u32,
    /// Completion (or drop-decision) time, if the run saw it end.
    pub completed_ns: Option<u64>,
    /// Whether the communication dropped instead of delivering.
    pub dropped: bool,
    /// Pair-hops fired for this communication, in fire order.
    pub hops: Vec<HopSpan>,
}

/// Deterministic time-series distilled from a recorded run: per-resource
/// utilization traces on a fixed sampling grid, storage occupancy,
/// stall-cause and dispatch breakdowns, and per-communication hop
/// timelines.
///
/// The sampling grid divides `[0, makespan_ns]` into `bins` intervals
/// with integer-nanosecond edges `edge(k) = makespan_ns · k / bins`
/// (floor division; the last bin absorbs the remainder), so the traces
/// are pure functions of the run — no float accumulation order, no
/// wall-clock anywhere.
///
/// Conservation: integrating a utilization trace over the grid
/// ([`TimelineReport::mean_teleporter_utilization`] /
/// [`TimelineReport::mean_purifier_utilization`]) reproduces the
/// corresponding end-of-run scalar in the simulator's report to within
/// float round-off — the property tests in the workspace hold this to
/// `1e-9`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineReport {
    /// Total simulated time covered by the grid.
    pub makespan_ns: u64,
    /// Number of sampling bins.
    pub bins: u32,
    /// Mean teleporter utilization per bin (averaged over every pool,
    /// weighted by pool capacity — same convention as the scalar).
    pub teleporter_utilization: Vec<f64>,
    /// Mean purifier utilization per bin.
    pub purifier_utilization: Vec<f64>,
    /// Mean storage occupancy per bin, as a fraction of all cells.
    pub storage_occupancy: Vec<f64>,
    /// Stall-cause breakdown over the whole run.
    pub stalls: StallBreakdown,
    /// Event-dispatch counts over the whole run.
    pub dispatch: DispatchCounts,
    /// Largest event-queue depth observed at a batch boundary.
    pub max_queue_depth: u64,
    /// Per-communication hop timelines, by communication id.
    pub comms: Vec<CommTimeline>,
}

impl TimelineReport {
    /// Grid edge `k` in nanoseconds, `k ∈ 0..=bins`.
    pub fn bin_edge(&self, k: u32) -> u64 {
        bin_edge(self.makespan_ns, self.bins, k)
    }

    /// Width of bin `k` in nanoseconds.
    pub fn bin_width(&self, k: u32) -> u64 {
        self.bin_edge(k + 1) - self.bin_edge(k)
    }

    /// Integrates the teleporter trace back to the run-mean scalar
    /// (`NetReport::teleporter_utilization`).
    pub fn mean_teleporter_utilization(&self) -> f64 {
        self.integrate(&self.teleporter_utilization)
    }

    /// Integrates the purifier trace back to the run-mean scalar
    /// (`NetReport::purifier_utilization`).
    pub fn mean_purifier_utilization(&self) -> f64 {
        self.integrate(&self.purifier_utilization)
    }

    fn integrate(&self, trace: &[f64]) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for (k, v) in trace.iter().enumerate() {
            let w = self.bin_width(k as u32);
            if w > 0 && *v != 0.0 {
                total += v * w as f64;
            }
        }
        total / self.makespan_ns as f64
    }

    /// Flattens the timeline into named metrics, ready to be merged
    /// into a run's metric record under a namespace prefix
    /// (`Metrics::extend`).
    pub fn metrics(&self) -> Metrics {
        let peak = |t: &[f64]| t.iter().copied().fold(0.0, f64::max);
        Metrics::new()
            .with("bins", f64::from(self.bins))
            .with("teleporter_util_peak", peak(&self.teleporter_utilization))
            .with("purifier_util_peak", peak(&self.purifier_utilization))
            .with("storage_occupancy_peak", peak(&self.storage_occupancy))
            .with("max_queue_depth", self.max_queue_depth as f64)
            .with("stall_teleporter", self.stalls.teleporter as f64)
            .with("stall_wire", self.stalls.wire as f64)
            .with("stall_storage", self.stalls.storage as f64)
            .with("events_dispatched", self.dispatch.total() as f64)
            .with("comms_tracked", self.comms.len() as f64)
    }
}

fn bin_edge(makespan_ns: u64, bins: u32, k: u32) -> u64 {
    debug_assert!(k <= bins);
    ((u128::from(makespan_ns) * u128::from(k)) / u128::from(bins)) as u64
}

/// The bin whose `[edge(k), edge(k+1))` range contains `t`.
fn locate_bin(makespan_ns: u64, bins: u32, t: u64) -> u32 {
    if makespan_ns == 0 || t >= makespan_ns {
        return bins - 1;
    }
    let mut k = ((u128::from(t) * u128::from(bins)) / u128::from(makespan_ns)) as u32;
    k = k.min(bins - 1);
    // Floor-division edges can land the estimate one bin off.
    while k + 1 < bins && bin_edge(makespan_ns, bins, k + 1) <= t {
        k += 1;
    }
    while k > 0 && bin_edge(makespan_ns, bins, k) > t {
        k -= 1;
    }
    k
}

/// Accumulates `weight_per_ns` over the span `[start, start + dur_ns)`
/// into the bins it overlaps. Any tail past the grid (spans never
/// extend past the makespan in practice, but conservation must hold
/// regardless) lands in the final bin, so the integral of the
/// accumulated trace always equals `dur_ns × weight_per_ns`.
fn add_span(
    acc: &mut [f64],
    makespan_ns: u64,
    bins: u32,
    start: u64,
    dur_ns: u64,
    weight_per_ns: f64,
) {
    if dur_ns == 0 || makespan_ns == 0 {
        return;
    }
    let end = start + dur_ns;
    let mut k = locate_bin(makespan_ns, bins, start);
    loop {
        let lo = bin_edge(makespan_ns, bins, k).max(start);
        let hi = if k + 1 == bins {
            end
        } else {
            bin_edge(makespan_ns, bins, k + 1).min(end)
        };
        if hi > lo {
            acc[k as usize] += (hi - lo) as f64 * weight_per_ns;
        }
        if k + 1 == bins || bin_edge(makespan_ns, bins, k + 1) >= end {
            break;
        }
        k += 1;
    }
}

/// A probe that records every hook into a structured event stream and
/// distills it into a [`TimelineReport`] at the end of the run.
///
/// Attach it with the simulator's `with_probe` constructors and recover
/// it (for the exporters) from `run_traced`. Recording the same
/// configuration twice yields byte-identical exporter output.
#[derive(Debug, Clone, Default)]
pub struct RecordingProbe {
    bins: u32,
    fabric: Option<FabricInfo>,
    events: Vec<TraceEvent>,
    dispatch: DispatchCounts,
    stalls: StallBreakdown,
    max_queue_depth: u64,
}

/// Default sampling-grid resolution.
const DEFAULT_BINS: u32 = 64;

impl RecordingProbe {
    /// A recording probe with the default sampling grid (64 bins).
    pub fn new() -> RecordingProbe {
        RecordingProbe::with_bins(DEFAULT_BINS)
    }

    /// A recording probe with a custom sampling-grid resolution.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero.
    pub fn with_bins(bins: u32) -> RecordingProbe {
        assert!(bins > 0, "the sampling grid needs at least one bin");
        RecordingProbe {
            bins,
            fabric: None,
            events: Vec::new(),
            dispatch: DispatchCounts::default(),
            stalls: StallBreakdown::default(),
            max_queue_depth: 0,
        }
    }

    /// The fabric under instrumentation, once the run has started.
    pub fn fabric(&self) -> Option<&FabricInfo> {
        self.fabric.as_ref()
    }

    /// The recorded event stream, chronological.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    fn record(&mut self, t_ns: u64, kind: TraceEventKind) {
        self.events.push(TraceEvent { t_ns, kind });
    }

    /// Builds the timeline without consuming the probe (also used by
    /// [`Probe::finish`]).
    pub fn timeline(&self, makespan_ns: u64) -> TimelineReport {
        let bins = self.bins;
        let nb = bins as usize;
        let info = self.fabric.as_ref();
        let empty: &[u32] = &[];
        let tele_caps: &[u32] = info.map_or(empty, |i| i.teleset_capacity.as_slice());
        let n_tele = tele_caps.len();
        let n_sites = info.map_or(0, |i| i.nodes as usize);
        let puri_units = info.map_or(1, |i| i.purifier_units).max(1);
        let n_banks = info.map_or(0, |i| (i.nodes * i.ports_per_node) as usize);
        let store_cap = info.map_or(1, |i| i.storage_capacity).max(1);

        let mut tele = vec![0.0; nb];
        let mut puri = vec![0.0; nb];
        let mut occ = vec![0.0; nb];
        let mut used = vec![0u32; n_banks];
        let mut total_used: u64 = 0;
        let mut seg_start = 0u64;
        let mut comms: Vec<CommTimeline> = Vec::new();

        for ev in &self.events {
            match ev.kind {
                TraceEventKind::Submit { comm, hops } => comms.push(CommTimeline {
                    comm,
                    submitted_ns: ev.t_ns,
                    route_hops: hops,
                    completed_ns: None,
                    dropped: false,
                    hops: Vec::new(),
                }),
                TraceEventKind::HopFire {
                    comm,
                    pos,
                    link,
                    teleset,
                    service_ns,
                } => {
                    let cap = tele_caps.get(teleset as usize).copied().unwrap_or(1).max(1);
                    add_span(
                        &mut tele,
                        makespan_ns,
                        bins,
                        ev.t_ns,
                        service_ns,
                        1.0 / f64::from(cap),
                    );
                    if let Some(c) = comms.get_mut(comm as usize) {
                        c.hops.push(HopSpan {
                            pos,
                            link,
                            start_ns: ev.t_ns,
                            service_ns,
                        });
                    }
                }
                TraceEventKind::PurifyStart { dur_ns, .. } => {
                    add_span(
                        &mut puri,
                        makespan_ns,
                        bins,
                        ev.t_ns,
                        dur_ns,
                        1.0 / f64::from(puri_units),
                    );
                }
                TraceEventKind::Storage { storage, used: u } => {
                    if ev.t_ns > seg_start && total_used > 0 {
                        add_span(
                            &mut occ,
                            makespan_ns,
                            bins,
                            seg_start,
                            ev.t_ns - seg_start,
                            total_used as f64,
                        );
                    }
                    seg_start = ev.t_ns;
                    if let Some(prev) = used.get_mut(storage as usize) {
                        total_used = total_used + u64::from(u) - u64::from(*prev);
                        *prev = u;
                    }
                }
                TraceEventKind::Drop { comm } => {
                    if let Some(c) = comms.get_mut(comm as usize) {
                        c.dropped = true;
                        c.completed_ns = Some(ev.t_ns);
                    }
                }
                TraceEventKind::Done { comm, .. } => {
                    if let Some(c) = comms.get_mut(comm as usize) {
                        c.completed_ns = Some(ev.t_ns);
                    }
                }
                TraceEventKind::Reroute { .. }
                | TraceEventKind::Stall { .. }
                | TraceEventKind::WireTake { .. }
                | TraceEventKind::TelesetRelease { .. } => {}
            }
        }
        if makespan_ns > seg_start && total_used > 0 {
            add_span(
                &mut occ,
                makespan_ns,
                bins,
                seg_start,
                makespan_ns - seg_start,
                total_used as f64,
            );
        }

        // Normalise each bin from weighted nanoseconds to a mean-over-
        // resources fraction of the bin width.
        for k in 0..bins {
            let w = bin_edge(makespan_ns, bins, k + 1) - bin_edge(makespan_ns, bins, k);
            let i = k as usize;
            if w == 0 {
                tele[i] = 0.0;
                puri[i] = 0.0;
                occ[i] = 0.0;
                continue;
            }
            let wf = w as f64;
            if n_tele > 0 {
                tele[i] /= wf * n_tele as f64;
            }
            if n_sites > 0 {
                puri[i] /= wf * n_sites as f64;
            }
            if n_banks > 0 {
                occ[i] /= wf * n_banks as f64 * f64::from(store_cap);
            }
        }

        TimelineReport {
            makespan_ns,
            bins,
            teleporter_utilization: tele,
            purifier_utilization: puri,
            storage_occupancy: occ,
            stalls: self.stalls,
            dispatch: self.dispatch,
            max_queue_depth: self.max_queue_depth,
            comms,
        }
    }
}

impl Probe for RecordingProbe {
    const ACTIVE: bool = true;

    fn on_fabric(&mut self, info: &FabricInfo) {
        self.fabric = Some(info.clone());
    }

    fn on_event(&mut self, _now_ns: u64, kind: EventKind) {
        self.dispatch.bump(kind);
    }

    fn on_queue_depth(&mut self, _now_ns: u64, depth: usize) {
        self.max_queue_depth = self.max_queue_depth.max(depth as u64);
    }

    fn on_submit(&mut self, now_ns: u64, comm: u32, hops: u32) {
        self.record(now_ns, TraceEventKind::Submit { comm, hops });
    }

    fn on_reroute(&mut self, now_ns: u64, comm: u32) {
        self.record(now_ns, TraceEventKind::Reroute { comm });
    }

    fn on_stall(&mut self, now_ns: u64, cause: StallCause, resource: u32, comm: u32) {
        match cause {
            StallCause::Teleporter => self.stalls.teleporter += 1,
            StallCause::Wire => self.stalls.wire += 1,
            StallCause::Storage => self.stalls.storage += 1,
        }
        self.record(
            now_ns,
            TraceEventKind::Stall {
                cause,
                resource,
                comm,
            },
        );
    }

    fn on_wire_take(&mut self, now_ns: u64, link: u32) {
        self.record(now_ns, TraceEventKind::WireTake { link });
    }

    fn on_hop_fire(
        &mut self,
        now_ns: u64,
        comm: u32,
        pos: u32,
        link: u32,
        teleset: u32,
        service_ns: u64,
    ) {
        self.record(
            now_ns,
            TraceEventKind::HopFire {
                comm,
                pos,
                link,
                teleset,
                service_ns,
            },
        );
    }

    fn on_teleset_release(&mut self, now_ns: u64, teleset: u32) {
        self.record(now_ns, TraceEventKind::TelesetRelease { teleset });
    }

    fn on_storage(&mut self, now_ns: u64, storage: u32, used: u32) {
        self.record(now_ns, TraceEventKind::Storage { storage, used });
    }

    fn on_purify_start(&mut self, now_ns: u64, site: u32, comm: u32, ops: u32, dur_ns: u64) {
        self.record(
            now_ns,
            TraceEventKind::PurifyStart {
                site,
                comm,
                ops,
                dur_ns,
            },
        );
    }

    fn on_comm_drop(&mut self, now_ns: u64, comm: u32) {
        self.record(now_ns, TraceEventKind::Drop { comm });
    }

    fn on_comm_done(&mut self, now_ns: u64, comm: u32, issued_ns: u64) {
        self.record(now_ns, TraceEventKind::Done { comm, issued_ns });
    }

    fn finish(&mut self, makespan_ns: u64) -> Option<TimelineReport> {
        Some(self.timeline(makespan_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_fabric() -> FabricInfo {
        FabricInfo {
            topology: "mesh".into(),
            width: 2,
            height: 1,
            nodes: 2,
            links: 1,
            port_classes: 1,
            ports_per_node: 2,
            teleset_capacity: vec![2, 2],
            storage_capacity: 2,
            purifier_units: 1,
        }
    }

    #[test]
    fn grid_edges_cover_the_horizon_exactly() {
        for (span, bins) in [(1000u64, 64u32), (7u64, 3u32), (3u64, 8u32)] {
            assert_eq!(bin_edge(span, bins, 0), 0);
            assert_eq!(bin_edge(span, bins, bins), span);
            let total: u64 = (0..bins)
                .map(|k| bin_edge(span, bins, k + 1) - bin_edge(span, bins, k))
                .sum();
            assert_eq!(total, span);
            for t in 0..span {
                let k = locate_bin(span, bins, t);
                assert!(bin_edge(span, bins, k) <= t && t < bin_edge(span, bins, k + 1));
            }
        }
    }

    #[test]
    fn spans_conserve_their_integral() {
        let (span, bins) = (997u64, 13u32);
        let mut acc = vec![0.0; bins as usize];
        add_span(&mut acc, span, bins, 100, 473, 0.5);
        let total: f64 = acc.iter().sum();
        assert!((total - 473.0 * 0.5).abs() < 1e-9, "{total}");
        // A span that would overhang the grid still conserves.
        let mut acc = vec![0.0; bins as usize];
        add_span(&mut acc, span, bins, 990, 50, 1.0);
        let total: f64 = acc.iter().sum();
        assert!((total - 50.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn utilization_trace_integrates_to_the_scalar() {
        let mut p = RecordingProbe::with_bins(7);
        p.on_fabric(&tiny_fabric());
        // Two teleporter holds on pool 0 (capacity 2): 400 ns at t=0,
        // 200 ns at t=300.
        p.on_hop_fire(0, 0, 0, 0, 0, 400);
        p.on_hop_fire(300, 0, 1, 0, 0, 200);
        // One purify job at the single-unit site.
        p.on_purify_start(500, 1, 0, 1, 250);
        let makespan = 1000u64;
        let t = p.timeline(makespan);
        // Scalar reference, the simulator's arithmetic: per-pool
        // busy/(horizon·cap), averaged over pools.
        let tele_ref = (600.0 / (1000.0 * 2.0)) / 2.0;
        let puri_ref = (250.0 / 1000.0) / 2.0;
        assert!((t.mean_teleporter_utilization() - tele_ref).abs() < 1e-12);
        assert!((t.mean_purifier_utilization() - puri_ref).abs() < 1e-12);
    }

    #[test]
    fn storage_occupancy_is_a_step_function() {
        let mut p = RecordingProbe::with_bins(4);
        p.on_fabric(&tiny_fabric());
        // Bank 0 holds one of its two cells for [100, 500).
        p.on_storage(100, 0, 1);
        p.on_storage(500, 0, 0);
        let t = p.timeline(800);
        // 400 cell·ns over 4 banks × 2 cells × 800 ns horizon.
        let mean: f64 = (0..4)
            .map(|k| t.storage_occupancy[k as usize] * t.bin_width(k) as f64)
            .sum::<f64>()
            / 800.0;
        assert!((mean - 400.0 / (800.0 * 8.0)).abs() < 1e-12, "{mean}");
    }

    #[test]
    fn comm_timelines_assemble() {
        let mut p = RecordingProbe::new();
        p.on_fabric(&tiny_fabric());
        p.on_submit(0, 0, 1);
        p.on_hop_fire(10, 0, 0, 0, 0, 100);
        p.on_comm_done(500, 0, 0);
        p.on_submit(20, 1, 0);
        p.on_comm_drop(20, 1);
        let t = p.timeline(500);
        assert_eq!(t.comms.len(), 2);
        assert_eq!(t.comms[0].hops.len(), 1);
        assert_eq!(t.comms[0].completed_ns, Some(500));
        assert!(!t.comms[0].dropped);
        assert!(t.comms[1].dropped);
        assert_eq!(t.comms[1].completed_ns, Some(20));
    }

    #[test]
    fn counters_and_metrics_flatten() {
        let mut p = RecordingProbe::new();
        p.on_fabric(&tiny_fabric());
        p.on_event(0, EventKind::SourceTry);
        p.on_event(0, EventKind::SourceTry);
        p.on_event(5, EventKind::TeleportDone);
        p.on_queue_depth(5, 17);
        p.on_stall(1, StallCause::Wire, 0, 0);
        p.on_stall(2, StallCause::Storage, 3, 0);
        let t = p.timeline(100);
        assert_eq!(t.dispatch.source_try, 2);
        assert_eq!(t.dispatch.total(), 3);
        assert_eq!(t.max_queue_depth, 17);
        assert_eq!(t.stalls.wire, 1);
        assert_eq!(t.stalls.storage, 1);
        let m = t.metrics();
        assert_eq!(m.get("stall_wire"), Some(1.0));
        assert_eq!(m.get("max_queue_depth"), Some(17.0));
        assert_eq!(m.get("events_dispatched"), Some(3.0));
    }

    #[test]
    fn zero_makespan_yields_flat_zero_traces() {
        let mut p = RecordingProbe::with_bins(3);
        p.on_fabric(&tiny_fabric());
        let t = p.timeline(0);
        assert!(t.teleporter_utilization.iter().all(|&v| v == 0.0));
        assert_eq!(t.mean_teleporter_utilization(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = RecordingProbe::with_bins(0);
    }
}
