//! # qic-probe — zero-cost structured tracing for the simulator stack
//!
//! The paper's analysis lives on *where time goes*: teleporter
//! occupancy, link contention, EPR-pair pipeline stalls. End-of-run
//! scalars (`NetReport`) answer *how much*; this crate answers *when
//! and where* — without perturbing the hot path when nobody is looking.
//!
//! The design is a monomorphized [`Probe`] trait:
//!
//! * every hook has an empty default body and the trait carries an
//!   associated `const ACTIVE: bool`;
//! * the simulator guards each call site with `if P::ACTIVE { … }`, so
//!   for the default [`NoProbe`] (`ACTIVE = false`) the branch — and
//!   the argument computation inside it — is statically eliminated:
//!   the instrumented hot path compiles to the uninstrumented one;
//! * attaching a [`RecordingProbe`] turns the same hooks into
//!   structured events, deterministic per-resource time series
//!   ([`TimelineReport`]), a JSONL event log and a Chrome-trace /
//!   Perfetto `trace.json`.
//!
//! Determinism contract: the simulator replays the identical event
//! sequence for a given configuration, so a [`RecordingProbe`]'s event
//! stream — and every exporter's output bytes — are identical across
//! runs, worker counts and machines. The [`schema`] module validates
//! emitted files structurally (CI's observability smoke test).
//!
//! This crate sits below `qic-net` (which threads the probe through its
//! event loop) and deliberately speaks only primitive resource indices,
//! so it can be depended on from anywhere in the stack without cycles.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod export;
mod record;
pub mod schema;

pub use record::{
    CommTimeline, DispatchCounts, HopSpan, RecordingProbe, StallBreakdown, TimelineReport,
    TraceEvent, TraceEventKind,
};

use serde::{Deserialize, Serialize};

/// The simulator event classes, as seen by [`Probe::on_event`] at
/// dispatch time. Mirrors the (private) event enum of the `qic-net`
/// event loop one-for-one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A communication's head-of-line pair attempted injection.
    SourceTry,
    /// A chained pair finished a teleport hop.
    TeleportDone,
    /// A wire may have produced pairs for its waiters.
    WireWake,
    /// A purifier unit finished a cascade job.
    PurifyDone,
    /// The final data teleport of a communication finished.
    DataTeleportDone,
    /// A communication with no surviving path was dropped.
    Dropped,
    /// A deferred driver submission fired.
    Submit,
    /// A driver timer fired.
    Notify,
}

impl EventKind {
    /// Every event class, in dispatch-enum order.
    pub const ALL: [EventKind; 8] = [
        EventKind::SourceTry,
        EventKind::TeleportDone,
        EventKind::WireWake,
        EventKind::PurifyDone,
        EventKind::DataTeleportDone,
        EventKind::Dropped,
        EventKind::Submit,
        EventKind::Notify,
    ];

    /// Stable lowercase label (used by the exporters).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::SourceTry => "source_try",
            EventKind::TeleportDone => "teleport_done",
            EventKind::WireWake => "wire_wake",
            EventKind::PurifyDone => "purify_done",
            EventKind::DataTeleportDone => "data_teleport_done",
            EventKind::Dropped => "dropped",
            EventKind::Submit => "submit",
            EventKind::Notify => "notify",
        }
    }
}

/// Why a pair-hop could not fire — the three stallable resources of the
/// simulator's commit check, in check order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StallCause {
    /// Downstream storage had no free cell (or bubble reserve held one).
    Storage,
    /// The link wire had no stocked EPR pair.
    Wire,
    /// The teleporter pool was fully busy.
    Teleporter,
}

impl StallCause {
    /// Stable lowercase label (used by the exporters).
    pub fn label(self) -> &'static str {
        match self {
            StallCause::Storage => "storage",
            StallCause::Wire => "wire",
            StallCause::Teleporter => "teleporter",
        }
    }
}

/// Static description of the fabric a run instruments, captured once at
/// construction ([`Probe::on_fabric`]). Resource ids in every later
/// hook index into this: teleporter pools as `node × port_classes +
/// class`, storage banks as `node × ports_per_node + incoming port`,
/// purifier sites and links by their dense indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricInfo {
    /// Topology name (`"mesh"`, `"torus"`, `"hypercube"`, …).
    pub topology: String,
    /// Grid width in sites.
    pub width: u16,
    /// Grid height in sites.
    pub height: u16,
    /// Node count.
    pub nodes: u32,
    /// Link count.
    pub links: u32,
    /// Port classes (dimension sets) per node.
    pub port_classes: u32,
    /// Ports per node.
    pub ports_per_node: u32,
    /// Teleporter-pool capacities, indexed `node × port_classes + class`
    /// (degraded fabrics may vary per node).
    pub teleset_capacity: Vec<u32>,
    /// Storage cells per (node, incoming-link) bank.
    pub storage_capacity: u32,
    /// Purifier units per endpoint site.
    pub purifier_units: u32,
}

/// The instrumentation interface the simulator is generic over.
///
/// Every hook has an empty default body; implementors override what
/// they need. The simulator calls hooks only inside `if P::ACTIVE`
/// guards, so a probe with `ACTIVE = false` costs literally nothing —
/// the guard is a compile-time constant and the whole call site is
/// eliminated.
///
/// Time is simulation time in integer nanoseconds; resource ids follow
/// the [`FabricInfo`] indexing.
pub trait Probe {
    /// Whether the simulator should emit events to this probe. Call
    /// sites are guarded by this constant; `false` compiles the hooks
    /// away entirely.
    const ACTIVE: bool;

    /// The fabric under instrumentation, once, at construction.
    fn on_fabric(&mut self, info: &FabricInfo) {
        let _ = info;
    }

    /// An event left the queue and is about to be handled.
    fn on_event(&mut self, now_ns: u64, kind: EventKind) {
        let _ = (now_ns, kind);
    }

    /// Queue depth observed at a dispatch batch boundary.
    fn on_queue_depth(&mut self, now_ns: u64, depth: usize) {
        let _ = (now_ns, depth);
    }

    /// A communication was submitted (`hops = 0` for an unreachable
    /// submission that will drop, or co-located endpoints).
    fn on_submit(&mut self, now_ns: u64, comm: u32, hops: u32) {
        let _ = (now_ns, comm, hops);
    }

    /// A submission routed longer than the healthy minimal distance
    /// (fault-aware topologies only).
    fn on_reroute(&mut self, now_ns: u64, comm: u32) {
        let _ = (now_ns, comm);
    }

    /// A pair-hop could not fire and queued on `resource`.
    fn on_stall(&mut self, now_ns: u64, cause: StallCause, resource: u32, comm: u32) {
        let _ = (now_ns, cause, resource, comm);
    }

    /// One EPR pair was consumed from a link wire.
    fn on_wire_take(&mut self, now_ns: u64, link: u32) {
        let _ = (now_ns, link);
    }

    /// A pair-hop committed: the teleporter slot is held for
    /// `service_ns` starting now.
    fn on_hop_fire(
        &mut self,
        now_ns: u64,
        comm: u32,
        pos: u32,
        link: u32,
        teleset: u32,
        service_ns: u64,
    ) {
        let _ = (now_ns, comm, pos, link, teleset, service_ns);
    }

    /// A teleporter slot was released.
    fn on_teleset_release(&mut self, now_ns: u64, teleset: u32) {
        let _ = (now_ns, teleset);
    }

    /// A storage bank's occupancy changed to `used` cells.
    fn on_storage(&mut self, now_ns: u64, storage: u32, used: u32) {
        let _ = (now_ns, storage, used);
    }

    /// A purification cascade job started: one unit at `site` is held
    /// for `dur_ns` starting now.
    fn on_purify_start(&mut self, now_ns: u64, site: u32, comm: u32, ops: u32, dur_ns: u64) {
        let _ = (now_ns, site, comm, ops, dur_ns);
    }

    /// A communication was dropped with a structured `Unreachable`
    /// outcome.
    fn on_comm_drop(&mut self, now_ns: u64, comm: u32) {
        let _ = (now_ns, comm);
    }

    /// A communication's data teleport completed.
    fn on_comm_done(&mut self, now_ns: u64, comm: u32, issued_ns: u64) {
        let _ = (now_ns, comm, issued_ns);
    }

    /// Called once at report time; a recording probe folds its event
    /// stream into a [`TimelineReport`] here.
    fn finish(&mut self, makespan_ns: u64) -> Option<TimelineReport> {
        let _ = makespan_ns;
        None
    }
}

/// The default probe: inert, and statically so. With `ACTIVE = false`
/// every hook call site in the simulator is eliminated at compile time,
/// so `NetworkSim<T, NoProbe>` (the default) is bit-for-bit the
/// uninstrumented hot path — the `bench_gate` trajectory holds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProbe;

impl Probe for NoProbe {
    const ACTIVE: bool = false;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noprobe_is_inactive_and_yields_no_timeline() {
        const { assert!(!NoProbe::ACTIVE) };
        let mut p = NoProbe;
        // Hooks are callable no-ops.
        p.on_event(0, EventKind::Submit);
        p.on_stall(1, StallCause::Wire, 0, 0);
        assert_eq!(p.finish(1000), None);
    }

    #[test]
    fn labels_are_stable_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for kind in EventKind::ALL {
            assert!(seen.insert(kind.label()), "duplicate label {kind:?}");
        }
        assert_eq!(StallCause::Storage.label(), "storage");
        assert_eq!(StallCause::Wire.label(), "wire");
        assert_eq!(StallCause::Teleporter.label(), "teleporter");
    }
}
