//! Structural validation for the emitted trace files.
//!
//! CI's observability smoke test (and `examples/trace_run.rs`) parse
//! every emitted file back and check it against the expected shape, so
//! a malformed exporter fails loudly instead of producing a trace that
//! silently will not load. The parser is a tiny self-contained
//! recursive-descent JSON reader — validation must not trust the code
//! that did the writing.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order is irrelevant to validation).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    fn obj(&self, ctx: &str) -> Result<&BTreeMap<String, Value>, String> {
        match self {
            Value::Obj(m) => Ok(m),
            other => Err(format!("{ctx}: expected object, got {}", other.type_name())),
        }
    }

    fn num(&self, ctx: &str) -> Result<f64, String> {
        match self {
            Value::Num(n) => Ok(*n),
            other => Err(format!("{ctx}: expected number, got {}", other.type_name())),
        }
    }

    fn str(&self, ctx: &str) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(format!("{ctx}: expected string, got {}", other.type_name())),
        }
    }
}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if matches!(b.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through untouched.
                let len = utf8_len(c);
                let chunk = b
                    .get(*pos..*pos + len)
                    .ok_or("truncated UTF-8 sequence".to_string())?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if matches!(b.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            other => return Err(format!("expected ',' or ']', got {other:?}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if matches!(b.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if !matches!(b.get(*pos), Some(b'"')) {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if !matches!(b.get(*pos), Some(b':')) {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

/// Every event label the JSONL log may carry, with its required numeric
/// fields beyond `t_ns`.
const EVENT_FIELDS: &[(&str, &[&str])] = &[
    ("submit", &["comm", "hops"]),
    ("reroute", &["comm"]),
    ("stall", &["resource", "comm"]),
    ("wire_take", &["link"]),
    (
        "hop_fire",
        &["comm", "pos", "link", "teleset", "service_ns"],
    ),
    ("teleset_release", &["teleset"]),
    ("storage", &["storage", "used"]),
    ("purify_start", &["site", "comm", "ops", "dur_ns"]),
    ("drop", &["comm"]),
    ("done", &["comm", "issued_ns"]),
];

/// Validates a JSONL event log: every line is an object with a numeric
/// `t_ns` (monotone non-decreasing across lines), a known `ev` label,
/// and that label's required payload fields. Returns the line count.
pub fn validate_events_jsonl(text: &str) -> Result<u64, String> {
    let mut lines = 0u64;
    let mut last_t = 0.0f64;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let n = i + 1;
        let v = parse(line).map_err(|e| format!("line {n}: {e}"))?;
        let obj = v.obj(&format!("line {n}"))?;
        let t = obj
            .get("t_ns")
            .ok_or(format!("line {n}: missing t_ns"))?
            .num(&format!("line {n}: t_ns"))?;
        if t < last_t {
            return Err(format!(
                "line {n}: t_ns {t} goes backwards (after {last_t})"
            ));
        }
        last_t = t;
        let ev = obj
            .get("ev")
            .ok_or(format!("line {n}: missing ev"))?
            .str(&format!("line {n}: ev"))?;
        let fields = EVENT_FIELDS
            .iter()
            .find(|(label, _)| *label == ev)
            .map(|(_, f)| *f)
            .ok_or(format!("line {n}: unknown event {ev:?}"))?;
        for f in fields {
            obj.get(*f)
                .ok_or(format!("line {n}: {ev} missing field {f:?}"))?
                .num(&format!("line {n}: {ev}.{f}"))?;
        }
        if ev == "stall" {
            obj.get("cause")
                .ok_or(format!("line {n}: stall missing cause"))?
                .str(&format!("line {n}: stall.cause"))?;
        }
        lines += 1;
    }
    Ok(lines)
}

/// Validates a Chrome trace-event file: a top-level object with a
/// `traceEvents` array whose entries carry the fields their phase
/// requires (`X` spans, `M` metadata, `i` instants, `C` counters).
/// Returns the event count.
pub fn validate_chrome_trace(text: &str) -> Result<u64, String> {
    let v = parse(text)?;
    let obj = v.obj("top level")?;
    let events = match obj.get("traceEvents") {
        Some(Value::Arr(a)) => a,
        Some(other) => {
            return Err(format!(
                "traceEvents: expected array, got {}",
                other.type_name()
            ))
        }
        None => return Err("missing traceEvents".into()),
    };
    for (i, ev) in events.iter().enumerate() {
        let ctx = format!("traceEvents[{i}]");
        let obj = ev.obj(&ctx)?;
        let need_num = |f: &str| -> Result<f64, String> {
            obj.get(f)
                .ok_or(format!("{ctx}: missing {f:?}"))?
                .num(&format!("{ctx}: {f}"))
        };
        let need_str = |f: &str| -> Result<&str, String> {
            obj.get(f)
                .ok_or(format!("{ctx}: missing {f:?}"))?
                .str(&format!("{ctx}: {f}"))
        };
        let ph = need_str("ph")?;
        match ph {
            "X" => {
                need_str("name")?;
                need_num("ts")?;
                need_num("dur")?;
                need_num("pid")?;
                need_num("tid")?;
            }
            "M" => {
                need_str("name")?;
                obj.get("args")
                    .ok_or(format!("{ctx}: missing \"args\""))?
                    .obj(&format!("{ctx}: args"))?;
            }
            "i" => {
                need_num("ts")?;
                need_num("pid")?;
                need_num("tid")?;
            }
            "C" => {
                need_str("name")?;
                need_num("ts")?;
                need_num("pid")?;
                obj.get("args")
                    .ok_or(format!("{ctx}: missing \"args\""))?
                    .obj(&format!("{ctx}: args"))?;
            }
            other => return Err(format!("{ctx}: unknown phase {other:?}")),
        }
    }
    Ok(events.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_basic_documents() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":"x\"y","c":true,"d":null}"#).unwrap();
        let obj = v.obj("t").unwrap();
        assert_eq!(
            obj.get("a"),
            Some(&Value::Arr(vec![
                Value::Num(1.0),
                Value::Num(2.5),
                Value::Num(-3.0)
            ]))
        );
        assert_eq!(obj.get("b"), Some(&Value::Str("x\"y".into())));
        assert_eq!(obj.get("c"), Some(&Value::Bool(true)));
        assert_eq!(obj.get("d"), Some(&Value::Null));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn jsonl_validator_enforces_shape() {
        let good = "{\"t_ns\":0,\"ev\":\"submit\",\"comm\":0,\"hops\":2}\n\
                    {\"t_ns\":5,\"ev\":\"wire_take\",\"link\":1}\n";
        assert_eq!(validate_events_jsonl(good), Ok(2));
        // Time going backwards.
        let bad = "{\"t_ns\":5,\"ev\":\"wire_take\",\"link\":1}\n\
                   {\"t_ns\":0,\"ev\":\"wire_take\",\"link\":1}\n";
        assert!(validate_events_jsonl(bad)
            .unwrap_err()
            .contains("backwards"));
        // Unknown label.
        let bad = "{\"t_ns\":0,\"ev\":\"nope\"}\n";
        assert!(validate_events_jsonl(bad).unwrap_err().contains("unknown"));
        // Missing payload field.
        let bad = "{\"t_ns\":0,\"ev\":\"submit\",\"comm\":0}\n";
        assert!(validate_events_jsonl(bad).unwrap_err().contains("hops"));
    }

    #[test]
    fn chrome_validator_enforces_phases() {
        let good = r#"{"traceEvents":[
            {"name":"process_name","ph":"M","pid":0,"args":{"name":"x"}},
            {"name":"s","ph":"X","ts":0.0,"dur":1.0,"pid":0,"tid":0},
            {"ph":"i","s":"t","ts":0.5,"pid":1,"tid":0},
            {"name":"c","ph":"C","ts":0.0,"pid":3,"args":{"used":1}}
        ]}"#;
        assert_eq!(validate_chrome_trace(good), Ok(4));
        assert!(validate_chrome_trace("{}")
            .unwrap_err()
            .contains("traceEvents"));
        let bad = r#"{"traceEvents":[{"name":"s","ph":"X","ts":0.0,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("dur"));
    }
}
