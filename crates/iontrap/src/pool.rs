//! Ion inventory and recycling.
//!
//! "Discarded qubits are returned to the generator for reuse" (Section
//! 3.1), and the conclusion calls for "an efficient recycling mechanism to
//! allow the constant reuse of qubits". A generator node owns a finite
//! stock of ions; measured/discarded EPR halves return to the stock after
//! a cooldown shuttle back to the generator.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

use qic_des::time::SimTime;

use crate::channel::IonId;

/// Error raised when the pool has no ion available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolExhaustedError {
    in_flight: usize,
}

impl PoolExhaustedError {
    /// Ions currently out of the pool.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }
}

impl fmt::Display for PoolExhaustedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ion pool exhausted ({} ions in flight)", self.in_flight)
    }
}

impl std::error::Error for PoolExhaustedError {}

/// A recycling pool of physical ions owned by one generator node.
///
/// # Example
///
/// ```
/// use qic_iontrap::pool::IonPool;
/// use qic_des::time::SimTime;
///
/// let mut pool = IonPool::new(2);
/// let a = pool.take(SimTime::ZERO)?;
/// let b = pool.take(SimTime::ZERO)?;
/// assert!(pool.take(SimTime::ZERO).is_err(), "stock exhausted");
/// pool.recycle(a, SimTime::from_nanos(100));
/// assert!(pool.take(SimTime::from_nanos(100)).is_ok());
/// # drop(b);
/// # Ok::<(), qic_iontrap::pool::PoolExhaustedError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IonPool {
    capacity: u64,
    free: VecDeque<IonId>,
    next_fresh: u64,
    in_flight: usize,
    peak_in_flight: usize,
    takes: u64,
    recycles: u64,
    last_event: SimTime,
}

impl IonPool {
    /// A pool stocked with `capacity` ions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "a generator needs at least one ion");
        IonPool {
            capacity,
            free: VecDeque::new(),
            next_fresh: 0,
            in_flight: 0,
            peak_in_flight: 0,
            takes: 0,
            recycles: 0,
            last_event: SimTime::ZERO,
        }
    }

    /// Total ions this pool owns.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Ions currently checked out.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Highest simultaneous checkout count observed.
    pub fn peak_in_flight(&self) -> usize {
        self.peak_in_flight
    }

    /// Ions available right now.
    pub fn available(&self) -> u64 {
        (self.capacity - self.next_fresh) + self.free.len() as u64
    }

    /// Total takes served.
    pub fn takes(&self) -> u64 {
        self.takes
    }

    /// Total recycles received.
    pub fn recycles(&self) -> u64 {
        self.recycles
    }

    /// Checks out an ion (recycled ions are reused before fresh stock).
    ///
    /// # Errors
    ///
    /// [`PoolExhaustedError`] if every ion is in flight.
    pub fn take(&mut self, now: SimTime) -> Result<IonId, PoolExhaustedError> {
        let ion = if let Some(ion) = self.free.pop_front() {
            ion
        } else if self.next_fresh < self.capacity {
            let ion = IonId(self.next_fresh);
            self.next_fresh += 1;
            ion
        } else {
            return Err(PoolExhaustedError {
                in_flight: self.in_flight,
            });
        };
        self.in_flight += 1;
        self.peak_in_flight = self.peak_in_flight.max(self.in_flight);
        self.takes += 1;
        self.last_event = now;
        Ok(ion)
    }

    /// Returns an ion to the pool (state is discarded; a recycled ion is
    /// re-initialised before reuse).
    pub fn recycle(&mut self, ion: IonId, now: SimTime) {
        debug_assert!(self.in_flight > 0, "recycle without a matching take");
        self.in_flight = self.in_flight.saturating_sub(1);
        self.recycles += 1;
        self.free.push_back(ion);
        self.last_event = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_until_exhausted() {
        let mut pool = IonPool::new(3);
        let t = SimTime::ZERO;
        let ions: Vec<IonId> = (0..3).map(|_| pool.take(t).unwrap()).collect();
        assert_eq!(ions, vec![IonId(0), IonId(1), IonId(2)]);
        let err = pool.take(t).unwrap_err();
        assert_eq!(err.in_flight(), 3);
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    fn recycle_reuses_ions() {
        let mut pool = IonPool::new(2);
        let t = SimTime::ZERO;
        let a = pool.take(t).unwrap();
        let _b = pool.take(t).unwrap();
        pool.recycle(a, t);
        let c = pool.take(t).unwrap();
        assert_eq!(c, a, "recycled ion comes back first");
        assert_eq!(pool.takes(), 3);
        assert_eq!(pool.recycles(), 1);
    }

    #[test]
    fn accounting() {
        let mut pool = IonPool::new(5);
        let t = SimTime::ZERO;
        assert_eq!(pool.available(), 5);
        let a = pool.take(t).unwrap();
        let b = pool.take(t).unwrap();
        assert_eq!(pool.in_flight(), 2);
        assert_eq!(pool.peak_in_flight(), 2);
        assert_eq!(pool.available(), 3);
        pool.recycle(a, t);
        pool.recycle(b, t);
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(pool.peak_in_flight(), 2);
        assert_eq!(pool.available(), 5);
        assert_eq!(pool.capacity(), 5);
    }

    #[test]
    fn steady_state_reuse_never_exhausts() {
        // A generator with 4 ions can serve an endless stream if pairs are
        // recycled promptly — the "constant reuse" the paper requires.
        let mut pool = IonPool::new(4);
        let mut now = SimTime::ZERO;
        for i in 0..1000u64 {
            let a = pool.take(now).unwrap();
            let b = pool.take(now).unwrap();
            now = SimTime::from_nanos((i + 1) * 122_000);
            pool.recycle(a, now);
            pool.recycle(b, now);
        }
        assert_eq!(pool.takes(), 2000);
        assert_eq!(pool.peak_in_flight(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one ion")]
    fn zero_capacity_rejected() {
        let _ = IonPool::new(0);
    }
}
