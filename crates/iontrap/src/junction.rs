//! Channel junctions.
//!
//! Two-dimensional ion shuttling needs junctions where channels meet;
//! Hensinger et al. (the paper's reference \[9\]) demonstrated a T-junction
//! array for "two-dimensional ion shuttling, storage and manipulation".
//! Turning a corner is slower than straight transport: the ion must be
//! cornered through the junction's centre with extra staging pulses.

use std::fmt;

use serde::{Deserialize, Serialize};

use qic_physics::optime::OpTimes;
use qic_physics::time::Duration;

/// Junction geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JunctionKind {
    /// Three-way (T) junction — the Hensinger et al. demonstration.
    Tee,
    /// Four-way (X) junction, as a full mesh crossing requires.
    Cross,
}

impl fmt::Display for JunctionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JunctionKind::Tee => f.write_str("T-junction"),
            JunctionKind::Cross => f.write_str("X-junction"),
        }
    }
}

/// A junction between channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Junction {
    kind: JunctionKind,
    /// Extra cell-equivalents of staging a cornering move costs beyond a
    /// straight pass.
    turn_penalty_cells: u32,
}

impl Junction {
    /// A junction with the default cornering penalty (3 cell-equivalents,
    /// the extra confinement/staging steps of the T-junction
    /// demonstration).
    pub fn new(kind: JunctionKind) -> Self {
        Junction {
            kind,
            turn_penalty_cells: 3,
        }
    }

    /// Overrides the cornering penalty.
    pub fn with_turn_penalty(mut self, cells: u32) -> Self {
        self.turn_penalty_cells = cells;
        self
    }

    /// The junction geometry.
    pub fn kind(&self) -> JunctionKind {
        self.kind
    }

    /// Extra cell-equivalents charged for a turn.
    pub fn turn_penalty_cells(&self) -> u32 {
        self.turn_penalty_cells
    }

    /// Degrees of freedom: how many channel arms meet here.
    pub fn arms(&self) -> u32 {
        match self.kind {
            JunctionKind::Tee => 3,
            JunctionKind::Cross => 4,
        }
    }

    /// Time for an ion to transit the junction.
    ///
    /// A straight pass costs one cell; a turn costs one cell plus the
    /// penalty.
    pub fn transit_time(&self, turning: bool, times: &OpTimes) -> Duration {
        let cells = 1 + if turning { self.turn_penalty_cells } else { 0 };
        times.ballistic(u64::from(cells))
    }

    /// Equivalent cell count for error accounting.
    pub fn transit_cells(&self, turning: bool) -> u32 {
        1 + if turning { self.turn_penalty_cells } else { 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arms() {
        assert_eq!(Junction::new(JunctionKind::Tee).arms(), 3);
        assert_eq!(Junction::new(JunctionKind::Cross).arms(), 4);
    }

    #[test]
    fn turning_costs_more() {
        let j = Junction::new(JunctionKind::Cross);
        let t = OpTimes::ion_trap();
        assert!(j.transit_time(true, &t) > j.transit_time(false, &t));
        assert_eq!(j.transit_cells(false), 1);
        assert_eq!(j.transit_cells(true), 4);
    }

    #[test]
    fn custom_penalty() {
        let j = Junction::new(JunctionKind::Tee).with_turn_penalty(10);
        assert_eq!(j.turn_penalty_cells(), 10);
        assert_eq!(j.transit_cells(true), 11);
        assert_eq!(j.kind(), JunctionKind::Tee);
    }

    #[test]
    fn display() {
        assert_eq!(JunctionKind::Tee.to_string(), "T-junction");
        assert_eq!(JunctionKind::Cross.to_string(), "X-junction");
    }
}
