//! Electrode waveforms for ballistic shuttling — **Figure 2**.
//!
//! A channel cell `k` is the space between electrode columns `k` and
//! `k+1` (each column is a top/bottom electrode pair driven together).
//! Holding an ion at cell `k` means biasing columns `k` and `k+1` to trap;
//! moving it one cell right is one *phase*: push from behind (column `k`)
//! and open the next well (columns `k+1`/`k+2`). Chaining phases walks the
//! ion down the channel at one cell per `tmv` (0.2 µs).

use std::fmt;

use serde::{Deserialize, Serialize};

use qic_physics::optime::OpTimes;
use qic_physics::time::Duration;

/// Drive level of an electrode column during one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Level {
    /// Grounded (no influence).
    Ground,
    /// Negative bias: forms a trapping well (attracts the positive ion).
    Trap,
    /// Positive bias: repels the ion out of its current well.
    Push,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::Ground => f.write_str("·"),
            Level::Trap => f.write_str("T"),
            Level::Push => f.write_str("P"),
        }
    }
}

/// Error raised for a degenerate shuttle request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyShuttleError;

impl fmt::Display for EmptyShuttleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("shuttle source and destination cells are equal")
    }
}

impl std::error::Error for EmptyShuttleError {}

/// A planned shuttle of one ion along a channel, from `from_cell` to
/// `to_cell` (either direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShuttlePlan {
    from_cell: u32,
    to_cell: u32,
}

impl ShuttlePlan {
    /// Plans a shuttle between two distinct cells.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyShuttleError`] if the cells are equal.
    pub fn new(from_cell: u32, to_cell: u32) -> Result<Self, EmptyShuttleError> {
        if from_cell == to_cell {
            return Err(EmptyShuttleError);
        }
        Ok(ShuttlePlan { from_cell, to_cell })
    }

    /// Source cell.
    pub fn from_cell(&self) -> u32 {
        self.from_cell
    }

    /// Destination cell.
    pub fn to_cell(&self) -> u32 {
        self.to_cell
    }

    /// Number of single-cell moves.
    pub fn cells(&self) -> u32 {
        self.from_cell.abs_diff(self.to_cell)
    }

    /// Whether the ion moves toward higher cell indices.
    pub fn forward(&self) -> bool {
        self.to_cell > self.from_cell
    }

    /// Generates the per-electrode pulse schedule realising this shuttle.
    pub fn waveforms(&self, times: &OpTimes) -> WaveformSchedule {
        let phase_time = times.move_cell();
        let n_phases = self.cells();
        let dir: i64 = if self.forward() { 1 } else { -1 };
        let mut phases = Vec::with_capacity(n_phases as usize);
        let mut cell = i64::from(self.from_cell);
        for i in 0..n_phases {
            let next = cell + dir;
            // Trap well opens at `next` (columns next, next+1); the column
            // behind the ion pushes.
            let push_col = if dir > 0 { cell } else { cell + 1 };
            let trap_cols = [next, next + 1];
            phases.push(Phase {
                index: i,
                start: phase_time * u64::from(i),
                duration: phase_time,
                ion_cell_before: cell as u32,
                ion_cell_after: next as u32,
                push_column: push_col.max(0) as u32,
                trap_columns: [trap_cols[0].max(0) as u32, trap_cols[1].max(0) as u32],
            });
            cell = next;
        }
        WaveformSchedule {
            plan: *self,
            phases,
        }
    }
}

/// One phase of a shuttle: the drive state for the duration of a
/// single-cell move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Phase {
    /// Phase number (0-based).
    pub index: u32,
    /// Offset from shuttle start.
    pub start: Duration,
    /// Phase duration (`tmv`).
    pub duration: Duration,
    /// Ion's cell at phase start.
    pub ion_cell_before: u32,
    /// Ion's cell at phase end.
    pub ion_cell_after: u32,
    /// Electrode column driven to [`Level::Push`].
    pub push_column: u32,
    /// Electrode columns driven to [`Level::Trap`].
    pub trap_columns: [u32; 2],
}

impl Phase {
    /// The drive level of electrode `column` during this phase.
    pub fn level_of(&self, column: u32) -> Level {
        if self.trap_columns.contains(&column) {
            Level::Trap
        } else if column == self.push_column {
            Level::Push
        } else {
            Level::Ground
        }
    }
}

/// The full electrode schedule for one shuttle (Figure 2's waveform set).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaveformSchedule {
    plan: ShuttlePlan,
    phases: Vec<Phase>,
}

impl WaveformSchedule {
    /// The plan this schedule realises.
    pub fn plan(&self) -> ShuttlePlan {
        self.plan
    }

    /// Number of pulse phases (one per cell moved).
    pub fn phases(&self) -> u32 {
        self.phases.len() as u32
    }

    /// The phase list in time order.
    pub fn phase_list(&self) -> &[Phase] {
        &self.phases
    }

    /// Total schedule duration (`tmv × cells`, Equation 2).
    pub fn total_time(&self) -> Duration {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// The ion's cell at the end of each phase — the well trajectory.
    pub fn well_trajectory(&self) -> Vec<u32> {
        self.phases.iter().map(|p| p.ion_cell_after).collect()
    }

    /// Checks the physical invariants of the schedule:
    ///
    /// 1. the well moves exactly one cell per phase, with no gaps,
    /// 2. the push electrode is never also a trap electrode,
    /// 3. phases tile time contiguously.
    pub fn is_well_formed(&self) -> bool {
        let mut expected_start = Duration::ZERO;
        let mut cell = self.plan.from_cell;
        for p in &self.phases {
            if p.start != expected_start {
                return false;
            }
            expected_start += p.duration;
            if p.ion_cell_before != cell || p.ion_cell_after.abs_diff(cell) != 1 {
                return false;
            }
            cell = p.ion_cell_after;
            if p.trap_columns.contains(&p.push_column) {
                return false;
            }
        }
        cell == self.plan.to_cell
    }

    /// Renders the schedule as a text table: one row per electrode column,
    /// one character per phase (`·` ground, `T` trap, `P` push) — an ASCII
    /// rendition of Figure 2.
    pub fn render(&self) -> String {
        let max_col = self
            .phases
            .iter()
            .flat_map(|p| p.trap_columns.iter().copied().chain([p.push_column]))
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for col in 0..=max_col {
            out.push_str(&format!("e{col:02} "));
            for p in &self.phases {
                out.push_str(&p.level_of(col).to_string());
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times() -> OpTimes {
        OpTimes::ion_trap()
    }

    #[test]
    fn figure2_example_three_to_nine() {
        // Figure 2 moves an ion from between electrodes 3 and 4 to between
        // 9 and 10 — six cells in our numbering (cell 3 → cell 9).
        let plan = ShuttlePlan::new(3, 9).unwrap();
        let s = plan.waveforms(&times());
        assert_eq!(s.phases(), 6);
        assert!(s.is_well_formed());
        assert_eq!(s.total_time(), Duration::from_us_f64(1.2));
        assert_eq!(s.well_trajectory(), vec![4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn backward_shuttle() {
        let plan = ShuttlePlan::new(9, 3).unwrap();
        let s = plan.waveforms(&times());
        assert!(s.is_well_formed());
        assert!(!plan.forward());
        assert_eq!(s.well_trajectory(), vec![8, 7, 6, 5, 4, 3]);
    }

    #[test]
    fn zero_length_rejected() {
        assert_eq!(ShuttlePlan::new(5, 5), Err(EmptyShuttleError));
        assert!(EmptyShuttleError.to_string().contains("equal"));
    }

    #[test]
    fn single_cell_move() {
        let plan = ShuttlePlan::new(0, 1).unwrap();
        let s = plan.waveforms(&times());
        assert_eq!(s.phases(), 1);
        assert_eq!(s.total_time(), times().move_cell());
        assert!(s.is_well_formed());
    }

    #[test]
    fn push_is_behind_trap_ahead() {
        let plan = ShuttlePlan::new(2, 4).unwrap();
        let s = plan.waveforms(&times());
        let p0 = &s.phase_list()[0];
        // Moving right from cell 2: push from column 2, trap at 3 & 4.
        assert_eq!(p0.push_column, 2);
        assert_eq!(p0.trap_columns, [3, 4]);
        assert_eq!(p0.level_of(2), Level::Push);
        assert_eq!(p0.level_of(3), Level::Trap);
        assert_eq!(p0.level_of(7), Level::Ground);
    }

    #[test]
    fn render_has_one_row_per_column() {
        let s = ShuttlePlan::new(0, 3).unwrap().waveforms(&times());
        let text = s.render();
        let rows: Vec<&str> = text.lines().collect();
        // Columns 0..=4 participate.
        assert_eq!(rows.len(), 5);
        assert!(rows[0].starts_with("e00 "));
        // Each row has one symbol per phase after the label.
        for r in &rows {
            assert_eq!(r.chars().count(), 4 + 3);
        }
    }

    #[test]
    fn schedule_matches_equation2_for_long_moves() {
        let plan = ShuttlePlan::new(0, 600).unwrap();
        let s = plan.waveforms(&times());
        assert_eq!(s.total_time(), Duration::from_micros(120));
        assert!(s.is_well_formed());
    }
}
