//! Occupancy-checked ballistic channels.
//!
//! A channel is a linear run of trap cells. Ions are physical objects: two
//! ions cannot pass through each other, so a shuttle reserves its whole
//! span. The channel tracks per-ion accumulated movement error using the
//! Equation 1 model.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use qic_physics::error::ErrorRates;
use qic_physics::fidelity::Fidelity;
use qic_physics::optime::OpTimes;
use qic_physics::time::Duration;
use qic_physics::transport;

use crate::waveform::{ShuttlePlan, WaveformSchedule};

/// Identifier of a physical ion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IonId(pub u64);

impl fmt::Display for IonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ion{}", self.0)
    }
}

/// Errors raised by channel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// A cell index beyond the channel length.
    OutOfRange {
        /// The offending cell.
        cell: u32,
        /// Channel length in cells.
        len: u32,
    },
    /// The target cell (or a cell on the path) is occupied.
    Blocked {
        /// The blocking ion.
        by: IonId,
        /// The occupied cell.
        at: u32,
    },
    /// The named ion is not in this channel.
    UnknownIon(IonId),
    /// The cell already holds an ion.
    Occupied {
        /// The occupied cell.
        cell: u32,
        /// The resident ion.
        by: IonId,
    },
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::OutOfRange { cell, len } => {
                write!(f, "cell {cell} outside channel of {len} cells")
            }
            ChannelError::Blocked { by, at } => write!(f, "path blocked by {by} at cell {at}"),
            ChannelError::UnknownIon(ion) => write!(f, "{ion} is not in this channel"),
            ChannelError::Occupied { cell, by } => write!(f, "cell {cell} already holds {by}"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// A completed shuttle: schedule, timing and fidelity outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShuttleOutcome {
    /// The electrode schedule that was (virtually) executed.
    pub schedule: WaveformSchedule,
    /// Wall-clock duration (`tmv × cells`).
    pub elapsed: Duration,
    /// Ion state fidelity after the move (Equation 1 applied to its
    /// fidelity before the move).
    pub fidelity_after: Fidelity,
}

/// A linear ballistic channel of `len` trap cells.
///
/// # Example
///
/// ```
/// use qic_iontrap::channel::{Channel, IonId};
///
/// let mut ch = Channel::new(16);
/// ch.insert(IonId(1), 0)?;
/// let out = ch.shuttle(IonId(1), 10)?;
/// assert_eq!(out.elapsed.as_us_f64(), 2.0);
/// assert_eq!(ch.position(IonId(1)), Some(10));
/// # Ok::<(), qic_iontrap::channel::ChannelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    len: u32,
    times: OpTimes,
    rates: ErrorRates,
    /// cell → ion
    occupancy: HashMap<u32, IonId>,
    /// ion → (cell, fidelity)
    ions: HashMap<IonId, (u32, Fidelity)>,
    /// Total cell-moves executed (for utilisation accounting).
    cell_moves: u64,
}

impl Channel {
    /// An empty channel of `len` cells with ion-trap default parameters.
    pub fn new(len: u32) -> Self {
        Channel::with_params(len, OpTimes::ion_trap(), ErrorRates::ion_trap())
    }

    /// An empty channel with explicit parameters.
    pub fn with_params(len: u32, times: OpTimes, rates: ErrorRates) -> Self {
        Channel {
            len,
            times,
            rates,
            occupancy: HashMap::new(),
            ions: HashMap::new(),
            cell_moves: 0,
        }
    }

    /// Channel length in cells.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the channel holds no ions.
    pub fn is_empty(&self) -> bool {
        self.ions.is_empty()
    }

    /// Number of ions currently in the channel.
    pub fn ion_count(&self) -> usize {
        self.ions.len()
    }

    /// Total single-cell moves executed so far.
    pub fn cell_moves(&self) -> u64 {
        self.cell_moves
    }

    /// The cell an ion occupies, if present.
    pub fn position(&self, ion: IonId) -> Option<u32> {
        self.ions.get(&ion).map(|(c, _)| *c)
    }

    /// The state fidelity of an ion, if present.
    pub fn fidelity(&self, ion: IonId) -> Option<Fidelity> {
        self.ions.get(&ion).map(|(_, f)| *f)
    }

    /// Places a fresh ion (perfect fidelity) at `cell`.
    ///
    /// # Errors
    ///
    /// [`ChannelError::OutOfRange`] or [`ChannelError::Occupied`].
    pub fn insert(&mut self, ion: IonId, cell: u32) -> Result<(), ChannelError> {
        self.insert_with_fidelity(ion, cell, Fidelity::ONE)
    }

    /// Places an ion carrying existing state at `cell`.
    ///
    /// # Errors
    ///
    /// [`ChannelError::OutOfRange`] or [`ChannelError::Occupied`].
    pub fn insert_with_fidelity(
        &mut self,
        ion: IonId,
        cell: u32,
        fidelity: Fidelity,
    ) -> Result<(), ChannelError> {
        self.check_cell(cell)?;
        if let Some(&by) = self.occupancy.get(&cell) {
            return Err(ChannelError::Occupied { cell, by });
        }
        self.occupancy.insert(cell, ion);
        self.ions.insert(ion, (cell, fidelity));
        Ok(())
    }

    /// Removes an ion (e.g. consumed by a gate or recycled).
    ///
    /// # Errors
    ///
    /// [`ChannelError::UnknownIon`] if absent.
    pub fn remove(&mut self, ion: IonId) -> Result<Fidelity, ChannelError> {
        let (cell, f) = self
            .ions
            .remove(&ion)
            .ok_or(ChannelError::UnknownIon(ion))?;
        self.occupancy.remove(&cell);
        Ok(f)
    }

    /// Shuttles an ion to `to_cell`, checking the whole path for
    /// collisions, generating the electrode schedule and applying movement
    /// decoherence.
    ///
    /// # Errors
    ///
    /// [`ChannelError::UnknownIon`], [`ChannelError::OutOfRange`], or
    /// [`ChannelError::Blocked`] if another ion sits anywhere on the path.
    pub fn shuttle(&mut self, ion: IonId, to_cell: u32) -> Result<ShuttleOutcome, ChannelError> {
        let (from, fid) = *self.ions.get(&ion).ok_or(ChannelError::UnknownIon(ion))?;
        self.check_cell(to_cell)?;
        if from == to_cell {
            // Degenerate move: nothing happens; report an empty-duration
            // outcome with a trivial one-cell schedule as documentation.
            return Ok(ShuttleOutcome {
                schedule: ShuttlePlan::new(from, from + 1)
                    .expect("adjacent cells differ")
                    .waveforms(&self.times),
                elapsed: Duration::ZERO,
                fidelity_after: fid,
            });
        }
        let (lo, hi) = (from.min(to_cell), from.max(to_cell));
        for cell in lo..=hi {
            if cell == from {
                continue;
            }
            if let Some(&by) = self.occupancy.get(&cell) {
                return Err(ChannelError::Blocked { by, at: cell });
            }
        }
        let plan = ShuttlePlan::new(from, to_cell).expect("cells differ");
        let schedule = plan.waveforms(&self.times);
        let elapsed = schedule.total_time();
        let fidelity_after =
            transport::ballistic_fidelity(fid, u64::from(plan.cells()), &self.rates);
        self.occupancy.remove(&from);
        self.occupancy.insert(to_cell, ion);
        self.ions.insert(ion, (to_cell, fidelity_after));
        self.cell_moves += u64::from(plan.cells());
        Ok(ShuttleOutcome {
            schedule,
            elapsed,
            fidelity_after,
        })
    }

    fn check_cell(&self, cell: u32) -> Result<(), ChannelError> {
        if cell >= self.len {
            Err(ChannelError::OutOfRange {
                cell,
                len: self.len,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_shuttle() {
        let mut ch = Channel::new(20);
        ch.insert(IonId(1), 2).unwrap();
        let out = ch.shuttle(IonId(1), 12).unwrap();
        assert_eq!(out.elapsed, Duration::from_micros(2));
        assert!(out.schedule.is_well_formed());
        assert_eq!(ch.position(IonId(1)), Some(12));
        assert_eq!(ch.cell_moves(), 10);
        // Ten cells of movement error.
        let e = ch.fidelity(IonId(1)).unwrap().infidelity();
        assert!((e - 1e-5).abs() / 1e-5 < 1e-3);
    }

    #[test]
    fn collisions_are_detected() {
        let mut ch = Channel::new(20);
        ch.insert(IonId(1), 0).unwrap();
        ch.insert(IonId(2), 5).unwrap();
        let err = ch.shuttle(IonId(1), 10).unwrap_err();
        assert_eq!(
            err,
            ChannelError::Blocked {
                by: IonId(2),
                at: 5
            }
        );
        // The failed shuttle must not have moved anything.
        assert_eq!(ch.position(IonId(1)), Some(0));
    }

    #[test]
    fn occupied_insert_rejected() {
        let mut ch = Channel::new(4);
        ch.insert(IonId(1), 1).unwrap();
        let err = ch.insert(IonId(2), 1).unwrap_err();
        assert!(matches!(
            err,
            ChannelError::Occupied {
                cell: 1,
                by: IonId(1)
            }
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut ch = Channel::new(4);
        assert!(matches!(
            ch.insert(IonId(1), 9),
            Err(ChannelError::OutOfRange { cell: 9, len: 4 })
        ));
        ch.insert(IonId(1), 0).unwrap();
        assert!(ch.shuttle(IonId(1), 99).is_err());
    }

    #[test]
    fn unknown_ion() {
        let mut ch = Channel::new(4);
        assert_eq!(
            ch.shuttle(IonId(7), 1).unwrap_err(),
            ChannelError::UnknownIon(IonId(7))
        );
        assert!(ch.remove(IonId(7)).is_err());
    }

    #[test]
    fn remove_frees_cell() {
        let mut ch = Channel::new(4);
        ch.insert(IonId(1), 2).unwrap();
        let f = ch.remove(IonId(1)).unwrap();
        assert_eq!(f, Fidelity::ONE);
        assert!(ch.is_empty());
        ch.insert(IonId(2), 2).unwrap();
        assert_eq!(ch.ion_count(), 1);
    }

    #[test]
    fn fidelity_carries_across_inserts() {
        let mut ch = Channel::new(10);
        let f = Fidelity::new(0.999).unwrap();
        ch.insert_with_fidelity(IonId(1), 0, f).unwrap();
        let out = ch.shuttle(IonId(1), 5).unwrap();
        assert!(out.fidelity_after < f);
    }

    #[test]
    fn degenerate_move_costs_nothing() {
        let mut ch = Channel::new(10);
        ch.insert(IonId(1), 3).unwrap();
        let out = ch.shuttle(IonId(1), 3).unwrap();
        assert_eq!(out.elapsed, Duration::ZERO);
        assert_eq!(ch.cell_moves(), 0);
    }

    #[test]
    fn error_messages() {
        let e = ChannelError::Blocked {
            by: IonId(3),
            at: 7,
        };
        assert!(e.to_string().contains("ion3"));
        assert!(e.to_string().contains("7"));
    }
}
