//! Physical floorplans: grids of channels and junctions.
//!
//! The network layer (`qic-net`) reasons in *hops*; this module grounds a
//! hop in physical cells. A [`Floorplan`] is a rectangular grid of sites
//! connected by straight channels through cross junctions; route planning
//! is dimension-ordered (X then Y), matching the routing discipline of
//! Section 3.2.

use std::fmt;

use serde::{Deserialize, Serialize};

use qic_physics::error::ErrorRates;
use qic_physics::optime::OpTimes;
use qic_physics::time::Duration;
use qic_physics::transport;

use crate::junction::{Junction, JunctionKind};

/// A site coordinate on the floorplan grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Site {
    /// Column (x) index.
    pub x: u32,
    /// Row (y) index.
    pub y: u32,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// Error raised when a site lies outside the floorplan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteOutOfRangeError {
    site: Site,
    width: u32,
    height: u32,
}

impl fmt::Display for SiteOutOfRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "site {} outside {}x{} floorplan",
            self.site, self.width, self.height
        )
    }
}

impl std::error::Error for SiteOutOfRangeError {}

/// A planned physical route between two sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutePlan {
    /// Straight-channel cells traversed.
    pub straight_cells: u64,
    /// Junctions passed straight through.
    pub straight_junctions: u32,
    /// Junctions turned at (dimension-order routes turn at most once).
    pub turns: u32,
    /// Total cell-equivalents including junction penalties.
    pub total_cells: u64,
}

impl RoutePlan {
    /// Transit time for one ion over this route (Equation 2 applied to the
    /// total cell-equivalents).
    pub fn time(&self, times: &OpTimes) -> Duration {
        times.ballistic(self.total_cells)
    }

    /// Survival probability of the moved state (Equation 1).
    pub fn survival(&self, rates: &ErrorRates) -> f64 {
        transport::survival(self.total_cells, rates)
    }
}

/// A rectangular grid floorplan: `width × height` sites, adjacent sites
/// joined by straight channels of `cells_per_edge` trap cells through
/// cross junctions at every interior site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    width: u32,
    height: u32,
    cells_per_edge: u32,
    junction: Junction,
}

impl Floorplan {
    /// A `width × height` grid whose edges span `cells_per_edge` cells.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn grid(width: u32, height: u32, cells_per_edge: u32) -> Self {
        assert!(width > 0 && height > 0, "floorplan must be non-empty");
        assert!(cells_per_edge > 0, "edges must span at least one cell");
        Floorplan {
            width,
            height,
            cells_per_edge,
            junction: Junction::new(JunctionKind::Cross),
        }
    }

    /// Overrides the junction model.
    pub fn with_junction(mut self, junction: Junction) -> Self {
        self.junction = junction;
        self
    }

    /// Grid width in sites.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height in sites.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Channel length between adjacent sites, in cells.
    pub fn cells_per_edge(&self) -> u32 {
        self.cells_per_edge
    }

    /// Validates a site.
    ///
    /// # Errors
    ///
    /// [`SiteOutOfRangeError`] if the site lies outside the grid.
    pub fn check(&self, site: Site) -> Result<(), SiteOutOfRangeError> {
        if site.x < self.width && site.y < self.height {
            Ok(())
        } else {
            Err(SiteOutOfRangeError {
                site,
                width: self.width,
                height: self.height,
            })
        }
    }

    /// Plans the dimension-order (X then Y) route between two sites.
    ///
    /// # Errors
    ///
    /// [`SiteOutOfRangeError`] if either endpoint is invalid.
    pub fn route(&self, from: Site, to: Site) -> Result<RoutePlan, SiteOutOfRangeError> {
        self.check(from)?;
        self.check(to)?;
        let dx = u64::from(from.x.abs_diff(to.x));
        let dy = u64::from(from.y.abs_diff(to.y));
        let edges = dx + dy;
        let straight_cells = edges * u64::from(self.cells_per_edge);
        // Junctions at every intermediate site; the route turns once if it
        // moves in both dimensions.
        let junctions_on_path = edges.saturating_sub(1) as u32;
        let turns = u32::from(dx > 0 && dy > 0);
        let straight_junctions = junctions_on_path.saturating_sub(turns);
        let total_cells = straight_cells
            + u64::from(straight_junctions) * u64::from(self.junction.transit_cells(false))
            + u64::from(turns) * u64::from(self.junction.transit_cells(true));
        Ok(RoutePlan {
            straight_cells,
            straight_junctions,
            turns,
            total_cells,
        })
    }

    /// The longest route on this floorplan (corner to corner).
    pub fn diameter_cells(&self) -> u64 {
        let corner_a = Site { x: 0, y: 0 };
        let corner_b = Site {
            x: self.width - 1,
            y: self.height - 1,
        };
        self.route(corner_a, corner_b)
            .expect("corners are valid")
            .total_cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_route() {
        let fp = Floorplan::grid(8, 8, 100);
        let r = fp.route(Site { x: 0, y: 3 }, Site { x: 5, y: 3 }).unwrap();
        assert_eq!(r.straight_cells, 500);
        assert_eq!(r.turns, 0);
        assert_eq!(r.straight_junctions, 4);
        assert_eq!(r.total_cells, 504);
    }

    #[test]
    fn dimension_order_route_turns_once() {
        let fp = Floorplan::grid(8, 8, 100);
        let r = fp.route(Site { x: 0, y: 0 }, Site { x: 3, y: 2 }).unwrap();
        assert_eq!(r.turns, 1);
        assert_eq!(r.straight_cells, 500);
        // 4 intermediate junctions: 3 straight + 1 turn (penalty 3).
        assert_eq!(r.total_cells, 500 + 3 + 4);
    }

    #[test]
    fn zero_length_route() {
        let fp = Floorplan::grid(4, 4, 50);
        let r = fp.route(Site { x: 2, y: 2 }, Site { x: 2, y: 2 }).unwrap();
        assert_eq!(r.total_cells, 0);
        assert_eq!(r.time(&OpTimes::ion_trap()), Duration::ZERO);
    }

    #[test]
    fn out_of_range() {
        let fp = Floorplan::grid(4, 4, 50);
        let err = fp
            .route(Site { x: 0, y: 0 }, Site { x: 9, y: 0 })
            .unwrap_err();
        assert!(err.to_string().contains("4x4"));
    }

    #[test]
    fn section1_corner_to_corner_error() {
        // A 1000×1000-cell structure: corner-to-corner ballistic transport
        // suffers >1e-3 error (Section 1's motivating example).
        let fp = Floorplan::grid(11, 11, 100); // 10 edges × 100 cells each way
        let diameter = fp.diameter_cells();
        assert!(diameter >= 2000);
        let survival = transport::survival(diameter, &ErrorRates::ion_trap());
        assert!(1.0 - survival > 1e-3);
    }

    #[test]
    fn route_physics_helpers() {
        let fp = Floorplan::grid(8, 8, 600);
        let r = fp.route(Site { x: 0, y: 0 }, Site { x: 1, y: 0 }).unwrap();
        assert_eq!(r.time(&OpTimes::ion_trap()), Duration::from_micros(120));
        let s = r.survival(&ErrorRates::ion_trap());
        assert!((1.0 - s - 6e-4).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_dimension_rejected() {
        let _ = Floorplan::grid(0, 4, 10);
    }
}
