//! Ion-trap physical layer — the substrate the paper's interconnect sits
//! on (Section 2.3, Figure 2).
//!
//! An ion-trap quantum computer moves physical qubits (single ions)
//! *ballistically*: a channel is a sequence of trap cells formed by
//! electrode pairs, and applying staged voltage pulses walks the trapping
//! well — and the ion in it — down the channel. This crate models that
//! layer explicitly:
//!
//! * [`waveform`] — electrode pulse schedules for a shuttle operation
//!   (reproducing Figure 2's staged waveforms) with well-continuity
//!   checks,
//! * [`channel`] — occupancy-checked linear channels of trap cells,
//! * [`junction`] — T- and X-junctions (Hensinger et al.) that join
//!   channels into two-dimensional floorplans, with turn costs,
//! * [`floorplan`] — a grid floorplan with dimension-order route planning
//!   in physical cells,
//! * [`pool`] — the ion inventory and recycling mechanism the conclusion
//!   calls for ("an efficient recycling mechanism to allow the constant
//!   reuse of qubits").
//!
//! # Example
//!
//! ```
//! use qic_iontrap::prelude::*;
//! use qic_physics::optime::OpTimes;
//!
//! // Shuttle an ion 6 cells down a channel: 6 pulse phases, 1.2 µs.
//! let plan = ShuttlePlan::new(3, 9).expect("forward shuttle");
//! let schedule = plan.waveforms(&OpTimes::ion_trap());
//! assert_eq!(schedule.phases(), 6);
//! assert_eq!(schedule.total_time().as_us_f64(), 1.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod floorplan;
pub mod junction;
pub mod pool;
pub mod waveform;

/// Convenient glob-import surface: `use qic_iontrap::prelude::*;`.
pub mod prelude {
    pub use crate::channel::{Channel, ChannelError, IonId};
    pub use crate::floorplan::{Floorplan, RoutePlan};
    pub use crate::junction::{Junction, JunctionKind};
    pub use crate::pool::IonPool;
    pub use crate::waveform::{Level, ShuttlePlan, WaveformSchedule};
}

pub use channel::{Channel, ChannelError, IonId};
pub use floorplan::{Floorplan, RoutePlan};
pub use pool::IonPool;
pub use waveform::{ShuttlePlan, WaveformSchedule};
