//! Integration: waveform schedules, channels and junction routes must
//! compose into consistent round trips — an ion shuttled out and back
//! lands where it started, costs symmetric time, and loses fidelity
//! monotonically.

use qic_iontrap::channel::{Channel, IonId};
use qic_iontrap::floorplan::{Floorplan, Site};
use qic_iontrap::junction::{Junction, JunctionKind};
use qic_iontrap::waveform::ShuttlePlan;
use qic_physics::optime::OpTimes;

#[test]
fn waveform_out_and_back_mirrors_exactly() {
    let times = OpTimes::ion_trap();
    let out = ShuttlePlan::new(3, 9).unwrap().waveforms(&times);
    let back = ShuttlePlan::new(9, 3).unwrap().waveforms(&times);

    assert!(out.is_well_formed());
    assert!(back.is_well_formed());
    assert_eq!(out.phases(), back.phases());
    assert_eq!(out.total_time(), back.total_time());

    // The return trajectory is the reverse of the outbound one, shifted by
    // one cell (trajectories record the cell *after* each phase).
    let mut forward: Vec<u32> = std::iter::once(3).chain(out.well_trajectory()).collect();
    forward.reverse();
    let reverse: Vec<u32> = std::iter::once(9).chain(back.well_trajectory()).collect();
    assert_eq!(forward, reverse);
}

#[test]
fn channel_round_trip_restores_position_and_degrades_fidelity() {
    let mut ch = Channel::new(16);
    ch.insert(IonId(7), 2).unwrap();

    let there = ch.shuttle(IonId(7), 12).unwrap();
    assert_eq!(ch.position(IonId(7)), Some(12));
    assert!(there.schedule.is_well_formed());
    let f_mid = ch.fidelity(IonId(7)).unwrap();

    let back = ch.shuttle(IonId(7), 2).unwrap();
    assert_eq!(
        ch.position(IonId(7)),
        Some(2),
        "round trip restores the cell"
    );
    let f_end = ch.fidelity(IonId(7)).unwrap();

    // Symmetric legs cost symmetric time; fidelity only ever decreases.
    assert_eq!(there.elapsed, back.elapsed);
    assert!(f_mid < qic_physics::fidelity::Fidelity::ONE);
    assert!(f_end < f_mid, "movement error accumulates on the way back");
    assert_eq!(ch.cell_moves(), 20);
}

#[test]
fn junction_routes_are_symmetric_and_turn_aware() {
    let fp = Floorplan::grid(8, 8, 600);
    let a = Site { x: 1, y: 1 };
    let b = Site { x: 5, y: 6 };

    let ab = fp.route(a, b).unwrap();
    let ba = fp.route(b, a).unwrap();
    assert_eq!(
        ab.total_cells, ba.total_cells,
        "routes cost the same both ways"
    );
    assert_eq!(
        ab.turns, 1,
        "dimension-order routes turn exactly once off-axis"
    );
    assert_eq!(ab.time(&OpTimes::ion_trap()), ba.time(&OpTimes::ion_trap()));

    // A straight route through the same junction model never turns, and a
    // bigger turn penalty only hurts turning routes.
    let straight = fp.route(a, Site { x: 5, y: 1 }).unwrap();
    assert_eq!(straight.turns, 0);
    let pricey = Floorplan::grid(8, 8, 600)
        .with_junction(Junction::new(JunctionKind::Cross).with_turn_penalty(30));
    assert!(pricey.route(a, b).unwrap().total_cells > ab.total_cells);
    assert_eq!(
        pricey.route(a, Site { x: 5, y: 1 }).unwrap().total_cells,
        straight.total_cells
    );
}

#[test]
fn schedule_total_time_matches_channel_elapsed() {
    // The electrode schedule and the occupancy-checked channel must agree
    // on how long the same physical move takes.
    let times = OpTimes::ion_trap();
    let schedule = ShuttlePlan::new(0, 11).unwrap().waveforms(&times);
    let mut ch = Channel::new(12);
    ch.insert(IonId(1), 0).unwrap();
    let outcome = ch.shuttle(IonId(1), 11).unwrap();
    assert_eq!(outcome.elapsed, schedule.total_time());
    assert_eq!(outcome.schedule, schedule);
}
