//! Property-based tests for topology and the simulator's conservation
//! laws.

use proptest::prelude::*;

use qic_net::config::NetConfig;
use qic_net::sim::{NetworkSim, OneShotDriver};
use qic_net::topology::{Coord, Mesh};

proptest! {
    #[test]
    fn routes_have_manhattan_length_and_one_turn(
        w in 2u16..20, h in 2u16..20,
        x1 in 0u16..20, y1 in 0u16..20, x2 in 0u16..20, y2 in 0u16..20,
    ) {
        let mesh = Mesh::new(w, h);
        let a = Coord::new(x1 % w, y1 % h);
        let b = Coord::new(x2 % w, y2 % h);
        let route = mesh.route(a, b);
        prop_assert_eq!(route.len() as u32, a.manhattan(b));
        let turns = route.windows(2).filter(|p| p[0].is_x() != p[1].is_x()).count();
        prop_assert!(turns <= 1, "dimension-order routes turn at most once");
        // The route must land exactly on b.
        let nodes = mesh.route_nodes(a, b);
        prop_assert_eq!(*nodes.last().unwrap(), b);
        prop_assert!(nodes.iter().all(|&n| mesh.contains(n)));
    }

    #[test]
    fn single_comm_conservation_laws(
        x1 in 0u16..4, y1 in 0u16..4, x2 in 0u16..4, y2 in 0u16..4,
        outputs in 1u32..5, depth in 1u32..4,
        seed in 0u64..1000,
    ) {
        let mut cfg = NetConfig::small_test();
        cfg.outputs_per_comm = outputs;
        cfg.purify_depth = depth;
        cfg.seed = seed;
        let src = Coord::new(x1, y1);
        let dst = Coord::new(x2, y2);
        let hops = u64::from(src.manhattan(dst));
        let mut driver = OneShotDriver::new(src, dst);
        let report = NetworkSim::new(cfg.clone()).run(&mut driver);

        prop_assert_eq!(report.comms_completed, 1);
        let raw = cfg.raw_pairs_per_comm();
        // Conservation: every teleport consumed exactly one link pair.
        prop_assert_eq!(report.teleport_ops, raw * hops);
        prop_assert_eq!(report.pairs_consumed, report.teleport_ops);
        prop_assert!(report.pairs_generated >= report.pairs_consumed);
        if hops > 0 {
            prop_assert_eq!(report.purified_outputs, u64::from(outputs));
            // Queue purifier: (2^depth − 1) ops per output.
            prop_assert_eq!(
                report.purify_ops,
                u64::from(outputs) * ((1 << depth) - 1)
            );
        }
    }

    #[test]
    fn seeds_do_not_change_accounting(seed in 0u64..10_000) {
        // The classical correction bits are random, but pair accounting is
        // deterministic regardless of seed.
        let mut cfg = NetConfig::small_test();
        cfg.seed = seed;
        let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 1));
        let report = NetworkSim::new(cfg).run(&mut driver);
        prop_assert_eq!(report.teleport_ops, 4 * 4);
        prop_assert_eq!(report.purified_outputs, 2);
    }
}
