//! Property-based tests for the topologies, the routing policies, and
//! the simulator's conservation laws.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;

use qic_net::config::NetConfig;
use qic_net::routing::{DimensionOrder, Router, RoutingPolicy};
use qic_net::sim::{BatchDriver, NetworkSim, OneShotDriver};
use qic_net::topology::{Coord, Fabric, Hypercube, Mesh, Port, Topology, TopologyKind, Torus};

/// A shared log of `route` calls: endpoint pair → the hop sequence
/// returned.
type RouteLog = Rc<RefCell<Vec<((usize, usize), Vec<Port>)>>>;

/// Dimension-order routing with a switchable cacheability flag and a
/// log of every `route` call — the probe for the differential test
/// between the precomputed-route fast path and the dynamic
/// `Router::route` path.
struct RecordingDor {
    cacheable: bool,
    log: RouteLog,
}

impl Router for RecordingDor {
    fn name(&self) -> &'static str {
        "dor"
    }

    fn cacheable(&self) -> bool {
        self.cacheable
    }

    fn route(
        &self,
        topo: &dyn Topology,
        src: usize,
        dst: usize,
        load: &dyn Fn(usize) -> u32,
    ) -> Vec<Port> {
        let path = DimensionOrder.route(topo, src, dst, load);
        self.log.borrow_mut().push(((src, dst), path.clone()));
        path
    }
}

/// The three fabrics at a `w × h`-ish scale (the hypercube picks the
/// nearest power-of-two node count).
fn fabrics(w: u16, h: u16) -> Vec<Fabric> {
    let dim = (usize::from(w) * usize::from(h)).ilog2().clamp(1, 8);
    vec![
        Fabric::Mesh(Mesh::new(w, h)),
        Fabric::Torus(Torus::new(w, h)),
        Fabric::Hypercube(Hypercube::new(dim)),
    ]
}

proptest! {
    #[test]
    fn routes_have_manhattan_length_and_one_turn(
        w in 2u16..20, h in 2u16..20,
        x1 in 0u16..20, y1 in 0u16..20, x2 in 0u16..20, y2 in 0u16..20,
    ) {
        let mesh = Mesh::new(w, h);
        let a = Coord::new(x1 % w, y1 % h);
        let b = Coord::new(x2 % w, y2 % h);
        let route = mesh.route(a, b);
        prop_assert_eq!(route.len() as u32, a.manhattan(b));
        let turns = route.windows(2).filter(|p| p[0].is_x() != p[1].is_x()).count();
        prop_assert!(turns <= 1, "dimension-order routes turn at most once");
        // The route must land exactly on b.
        let nodes = mesh.route_nodes(a, b);
        prop_assert_eq!(*nodes.last().unwrap(), b);
        prop_assert!(nodes.iter().all(|&n| mesh.contains(n)));
    }

    #[test]
    fn single_comm_conservation_laws(
        x1 in 0u16..4, y1 in 0u16..4, x2 in 0u16..4, y2 in 0u16..4,
        outputs in 1u32..5, depth in 1u32..4,
        seed in 0u64..1000,
    ) {
        let mut cfg = NetConfig::small_test();
        cfg.outputs_per_comm = outputs;
        cfg.purify_depth = depth;
        cfg.seed = seed;
        let src = Coord::new(x1, y1);
        let dst = Coord::new(x2, y2);
        let hops = u64::from(src.manhattan(dst));
        let mut driver = OneShotDriver::new(src, dst);
        let report = NetworkSim::new(cfg.clone()).run(&mut driver);

        prop_assert_eq!(report.comms_completed, 1);
        let raw = cfg.raw_pairs_per_comm();
        // Conservation: every teleport consumed exactly one link pair.
        prop_assert_eq!(report.teleport_ops, raw * hops);
        prop_assert_eq!(report.pairs_consumed, report.teleport_ops);
        prop_assert!(report.pairs_generated >= report.pairs_consumed);
        if hops > 0 {
            prop_assert_eq!(report.purified_outputs, u64::from(outputs));
            // Queue purifier: (2^depth − 1) ops per output.
            prop_assert_eq!(
                report.purify_ops,
                u64::from(outputs) * ((1 << depth) - 1)
            );
        }
    }

    #[test]
    fn routes_are_minimal_loop_free_and_deterministic(
        w in 2u16..8, h in 2u16..8,
        a in 0usize..1000, b in 0usize..1000,
        fake_load in proptest::collection::vec(0u32..7, 64),
    ) {
        for topo in fabrics(w, h) {
            let n = topo.nodes();
            let (src, dst) = (a % n, b % n);
            // Any load function — adaptive must stay minimal under it.
            let load = |link: usize| fake_load[link % fake_load.len()];
            for policy in RoutingPolicy::ALL {
                let router = policy.router();
                let path = router.route(&topo, src, dst, &load);
                // Minimal: length equals the topology's distance.
                prop_assert_eq!(
                    path.len() as u32,
                    topo.distance(src, dst),
                    "{} on {}", policy, topo.name()
                );
                // Loop-free: no node repeats, and the walk ends at dst.
                let mut at = src;
                let mut seen = std::collections::HashSet::from([at]);
                for &port in &path {
                    at = topo.neighbor(at, port).expect("wired");
                    prop_assert!(seen.insert(at), "revisited node {at}");
                }
                prop_assert_eq!(at, dst);
                // Deterministic: the same inputs give the same route.
                prop_assert_eq!(path, router.route(&topo, src, dst, &load));
            }
        }
    }

    #[test]
    fn distances_are_metrics(
        w in 2u16..8, h in 2u16..8,
        a in 0usize..1000, b in 0usize..1000, c in 0usize..1000,
    ) {
        for topo in fabrics(w, h) {
            let n = topo.nodes();
            let (x, y, z) = (a % n, b % n, c % n);
            // Identity and symmetry.
            prop_assert_eq!(topo.distance(x, x), 0);
            prop_assert_eq!(topo.distance(x, y), topo.distance(y, x), "{}", topo.name());
            prop_assert!(x == y || topo.distance(x, y) > 0);
            // Triangle inequality.
            prop_assert!(
                topo.distance(x, z) <= topo.distance(x, y) + topo.distance(y, z),
                "{}: d({x},{z}) > d({x},{y}) + d({y},{z})", topo.name()
            );
            // Bounded by the advertised diameter.
            prop_assert!(topo.distance(x, y) <= topo.diameter());
        }
    }

    #[test]
    fn wiring_is_consistent(w in 2u16..8, h in 2u16..8) {
        for topo in fabrics(w, h) {
            let mut crossings = vec![0u32; topo.links()];
            for node in 0..topo.nodes() {
                for p in 0..topo.ports_per_node() as u8 {
                    let port = Port(p);
                    prop_assert!(topo.port_class(port) < topo.port_classes());
                    let Some(next) = topo.neighbor(node, port) else { continue };
                    // The reverse port leads back across the same link.
                    let back = topo.reverse_port(node, port);
                    prop_assert_eq!(topo.neighbor(next, back), Some(node), "{}", topo.name());
                    let link = topo.link_index(node, port);
                    prop_assert!(link < topo.links());
                    prop_assert_eq!(link, topo.link_index(next, back));
                    crossings[link] += 1;
                }
            }
            // Every link is crossed by exactly two directed (node, port)
            // pairs: the indices are dense and nothing is double-wired.
            prop_assert!(crossings.iter().all(|&c| c == 2), "{}: {crossings:?}", topo.name());
        }
    }

    #[test]
    fn min_ports_decrease_distance(
        w in 2u16..8, h in 2u16..8,
        a in 0usize..1000, b in 0usize..1000,
    ) {
        for topo in fabrics(w, h) {
            let n = topo.nodes();
            let (src, dst) = (a % n, b % n);
            let ports = topo.min_ports(src, dst);
            prop_assert_eq!(ports.is_empty(), src == dst);
            let d = topo.distance(src, dst);
            for port in ports {
                let next = topo.neighbor(src, port).expect("minimal ports are wired");
                prop_assert_eq!(topo.distance(next, dst), d - 1, "{}", topo.name());
            }
        }
    }

    #[test]
    fn every_fabric_completes_and_conserves(
        kind_idx in 0usize..3,
        routing_idx in 0usize..2,
        x1 in 0u16..4, y1 in 0u16..4, x2 in 0u16..4, y2 in 0u16..4,
        seed in 0u64..1000,
    ) {
        let kind = TopologyKind::ALL[kind_idx];
        let routing = RoutingPolicy::ALL[routing_idx];
        let mut cfg = NetConfig::small_test().with_topology(kind).with_routing(routing);
        cfg.seed = seed;
        let src = Coord::new(x1, y1);
        let dst = Coord::new(x2, y2);
        let fabric = cfg.fabric();
        let hops = u64::from(fabric.distance(fabric.node_index(src), fabric.node_index(dst)));
        let mut driver = OneShotDriver::new(src, dst);
        let report = NetworkSim::new(cfg.clone()).run(&mut driver);
        prop_assert_eq!(report.comms_completed, 1);
        // Conservation holds on every fabric: teleports = raw pairs × the
        // topology's own distance, and each consumed one link pair.
        prop_assert_eq!(report.teleport_ops, cfg.raw_pairs_per_comm() * hops);
        prop_assert_eq!(report.pairs_consumed, report.teleport_ops);
        prop_assert!(report.pairs_generated >= report.pairs_consumed);
    }

    /// The precomputed-route fast path is an optimization, not a
    /// behaviour: on every fabric, under duplicated (cache-hitting)
    /// workloads and varying load parameters, the cached run must emit
    /// the same hop sequence per endpoint pair and a bit-identical
    /// [`qic_net::report::NetReport`] as the dynamic virtual-call path.
    #[test]
    fn cached_dor_fast_path_matches_dynamic_routing(
        kind_idx in 0usize..3,
        pairs in proptest::collection::vec((0u16..4, 0u16..4, 0u16..4, 0u16..4), 1..8),
        outputs in 1u32..4, depth in 1u32..3, gens in 1u32..3,
        seed in 0u64..1000,
    ) {
        let kind = TopologyKind::ALL[kind_idx];
        let mut cfg = NetConfig::small_test().with_topology(kind);
        cfg.outputs_per_comm = outputs;
        cfg.purify_depth = depth;
        cfg.generators_per_edge = gens;
        cfg.seed = seed;
        // Submit every pair twice so the second submission exercises a
        // cache hit on the fast-path run.
        let mut batch: Vec<(Coord, Coord)> = pairs
            .iter()
            .map(|&(a, b, c, d)| (Coord::new(a, b), Coord::new(c, d)))
            .collect();
        batch.extend(batch.clone());

        let run = |cacheable: bool| {
            let log = Rc::new(RefCell::new(Vec::new()));
            let router = Box::new(RecordingDor { cacheable, log: Rc::clone(&log) });
            let mut driver = BatchDriver::new(batch.clone());
            let report = NetworkSim::with_router(cfg.clone(), cfg.fabric(), router)
                .run(&mut driver);
            (report, Rc::try_unwrap(log).expect("sim dropped").into_inner())
        };
        let (cached_report, cached_log) = run(true);
        let (dynamic_report, dynamic_log) = run(false);
        prop_assert_eq!(&cached_report, &dynamic_report, "reports diverge");

        // The stock constructor (real `DimensionOrder`, cache on) agrees too.
        let mut driver = BatchDriver::new(batch.clone());
        let stock_report = NetworkSim::new(cfg.clone()).run(&mut driver);
        prop_assert_eq!(&cached_report, &stock_report, "stock constructor diverges");

        // Per endpoint pair, the cached (miss-time) route equals every
        // dynamically recomputed route.
        let miss_routes: std::collections::HashMap<(usize, usize), Vec<Port>> =
            cached_log.iter().cloned().collect();
        prop_assert!(!dynamic_log.is_empty());
        for (pair, path) in &dynamic_log {
            prop_assert_eq!(
                Some(path),
                miss_routes.get(pair),
                "hop sequence diverges for {:?}", pair
            );
        }
        // The cache genuinely deduplicates: at most one miss per
        // distinct pair, and never more route calls than the dynamic run.
        prop_assert_eq!(cached_log.len(), miss_routes.len(), "duplicate cache misses");
        prop_assert!(cached_log.len() <= dynamic_log.len());
    }

    #[test]
    fn seeds_do_not_change_accounting(seed in 0u64..10_000) {
        // The classical correction bits are random, but pair accounting is
        // deterministic regardless of seed.
        let mut cfg = NetConfig::small_test();
        cfg.seed = seed;
        let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 1));
        let report = NetworkSim::new(cfg).run(&mut driver);
        prop_assert_eq!(report.teleport_ops, 4 * 4);
        prop_assert_eq!(report.purified_outputs, 2);
    }
}
