//! Hardware resource models: teleporter sets, link-pair wires, storage.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use qic_des::time::SimTime;
use qic_physics::time::Duration;

/// A pool of identical servers (teleporters in one dimension set, or
/// purifier units at a site) with FIFO admission.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerPool {
    capacity: u32,
    busy: u32,
    /// Tokens waiting for a server, FIFO (the paper's time multiplexing).
    waiters: VecDeque<u64>,
    /// Total busy-time integral, for utilization reporting.
    busy_ns: u128,
}

impl ServerPool {
    /// A pool of `capacity` idle servers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "a server pool needs at least one server");
        ServerPool {
            capacity,
            busy: 0,
            waiters: VecDeque::new(),
            busy_ns: 0,
        }
    }

    /// Pool size.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Servers currently busy.
    pub fn busy(&self) -> u32 {
        self.busy
    }

    /// Whether a server is free right now.
    pub fn available(&self) -> bool {
        self.busy < self.capacity
    }

    /// Claims a server; the caller promises to call [`ServerPool::release`]
    /// after `hold` of service.
    ///
    /// # Panics
    ///
    /// Panics if no server is free (callers must check
    /// [`ServerPool::available`] first).
    pub fn acquire(&mut self, hold: Duration) {
        assert!(self.available(), "acquire on a full pool");
        self.busy += 1;
        self.busy_ns += u128::from(hold.as_nanos());
    }

    /// Returns a server to the pool.
    ///
    /// # Panics
    ///
    /// Panics if no server was busy.
    pub fn release(&mut self) {
        assert!(self.busy > 0, "release without acquire");
        self.busy -= 1;
    }

    /// Enqueues a waiter id.
    pub fn enqueue_waiter(&mut self, id: u64) {
        self.waiters.push_back(id);
    }

    /// Pops the next waiter, if any.
    pub fn pop_waiter(&mut self) -> Option<u64> {
        self.waiters.pop_front()
    }

    /// Number of queued waiters.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }

    /// Mean utilization over a horizon.
    pub fn utilization(&self, horizon: Duration) -> f64 {
        if horizon == Duration::ZERO {
            return 0.0;
        }
        self.busy_ns as f64 / (u128::from(horizon.as_nanos()) * u128::from(self.capacity)) as f64
    }
}

/// A virtual wire: the G node on one mesh edge, continuously producing
/// link EPR pairs into a bounded buffer (Figure 5).
///
/// Production is modelled lazily (no periodic events): one pair completes
/// every `interval` while the buffer is below capacity; the arithmetic is
/// integer-exact, so behaviour is independent of when the wire is
/// observed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkWire {
    interval: Duration,
    cap: u64,
    stock: u64,
    /// Completion time of the pair currently in production (meaningful
    /// only while `stock < cap`).
    next_ready: SimTime,
    produced: u64,
    consumed: u64,
    /// Tokens waiting for a pair on this edge.
    waiters: VecDeque<u64>,
    /// Whether a wake event is already scheduled for this wire.
    wake_pending: bool,
}

impl LinkWire {
    /// A wire producing one pair per `interval`, buffering up to `cap`
    /// pairs, starting empty at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or `cap` is zero.
    pub fn new(interval: Duration, cap: u64) -> Self {
        assert!(
            interval > Duration::ZERO,
            "generation interval must be positive"
        );
        assert!(cap > 0, "wire buffer must hold at least one pair");
        LinkWire {
            interval,
            cap,
            stock: 0,
            next_ready: SimTime::ZERO + interval,
            produced: 0,
            consumed: 0,
            waiters: VecDeque::new(),
            wake_pending: false,
        }
    }

    /// Brings production up to date with the clock.
    pub fn refresh(&mut self, now: SimTime) {
        while self.stock < self.cap && self.next_ready <= now {
            self.stock += 1;
            self.produced += 1;
            if self.stock < self.cap {
                self.next_ready += self.interval;
            }
        }
    }

    /// Takes one pair if available.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        self.refresh(now);
        if self.stock == 0 {
            return false;
        }
        if self.stock == self.cap {
            // Production was paused at full buffer; it resumes now.
            self.next_ready = now + self.interval;
        }
        self.stock -= 1;
        self.consumed += 1;
        true
    }

    /// When the next pair will be available (now, if stocked).
    pub fn next_available(&mut self, now: SimTime) -> SimTime {
        self.refresh(now);
        if self.stock > 0 {
            now
        } else {
            self.next_ready
        }
    }

    /// Pairs in the buffer (after refreshing).
    pub fn stock(&mut self, now: SimTime) -> u64 {
        self.refresh(now);
        self.stock
    }

    /// Pairs produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Pairs consumed so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Enqueues a token waiting for a pair.
    pub fn enqueue_waiter(&mut self, id: u64) {
        self.waiters.push_back(id);
    }

    /// Pops the next waiting token.
    pub fn pop_waiter(&mut self) -> Option<u64> {
        self.waiters.pop_front()
    }

    /// Whether any token is waiting.
    pub fn has_waiters(&self) -> bool {
        !self.waiters.is_empty()
    }

    /// Marks / clears the pending-wake flag (the simulator schedules at
    /// most one wake event per wire at a time).
    pub fn set_wake_pending(&mut self, pending: bool) {
        self.wake_pending = pending;
    }

    /// Whether a wake event is already scheduled.
    pub fn wake_pending(&self) -> bool {
        self.wake_pending
    }
}

/// Per-(node, incoming-link) storage: "storage for incoming teleports is
/// not multiplexed, yielding t storage cells per incoming link" (§5.3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Storage {
    capacity: u32,
    used: u32,
    waiters: VecDeque<u64>,
}

impl Storage {
    /// Storage with `capacity` cells.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "storage needs at least one cell");
        Storage {
            capacity,
            used: 0,
            waiters: VecDeque::new(),
        }
    }

    /// Whether a cell is free.
    pub fn available(&self) -> bool {
        self.used < self.capacity
    }

    /// Reserves a cell.
    ///
    /// # Panics
    ///
    /// Panics if full.
    pub fn reserve(&mut self) {
        assert!(self.available(), "storage overflow");
        self.used += 1;
    }

    /// Frees a cell.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn free(&mut self) {
        assert!(self.used > 0, "free on empty storage");
        self.used -= 1;
    }

    /// Cells in use.
    pub fn used(&self) -> u32 {
        self.used
    }

    /// Free cells (bubble flow control reserves one at ring-entry hops).
    pub fn free_cells(&self) -> u32 {
        self.capacity - self.used
    }

    /// Enqueues a waiting token.
    pub fn enqueue_waiter(&mut self, id: u64) {
        self.waiters.push_back(id);
    }

    /// Pops the next waiting token.
    pub fn pop_waiter(&mut self) -> Option<u64> {
        self.waiters.pop_front()
    }

    /// Number of queued waiters.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_pool_lifecycle() {
        let mut p = ServerPool::new(2);
        assert!(p.available());
        p.acquire(Duration::from_micros(10));
        p.acquire(Duration::from_micros(10));
        assert!(!p.available());
        assert_eq!(p.busy(), 2);
        p.release();
        assert!(p.available());
        p.enqueue_waiter(42);
        assert_eq!(p.queue_len(), 1);
        assert_eq!(p.pop_waiter(), Some(42));
        assert_eq!(p.pop_waiter(), None);
    }

    #[test]
    fn server_pool_utilization() {
        let mut p = ServerPool::new(2);
        p.acquire(Duration::from_micros(10));
        // One server busy 10µs of a 10µs horizon on 2 servers → 50%.
        assert!((p.utilization(Duration::from_micros(10)) - 0.5).abs() < 1e-12);
        assert_eq!(p.utilization(Duration::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "acquire on a full pool")]
    fn over_acquire_panics() {
        let mut p = ServerPool::new(1);
        p.acquire(Duration::ZERO);
        p.acquire(Duration::ZERO);
    }

    #[test]
    fn wire_produces_on_schedule() {
        let mut w = LinkWire::new(Duration::from_micros(10), 100);
        assert_eq!(w.stock(SimTime::ZERO), 0);
        assert_eq!(w.stock(SimTime::from_nanos(9_999)), 0);
        assert_eq!(w.stock(SimTime::from_nanos(10_000)), 1);
        assert_eq!(w.stock(SimTime::from_nanos(35_000)), 3);
        assert_eq!(w.produced(), 3);
    }

    #[test]
    fn wire_caps_and_resumes() {
        let mut w = LinkWire::new(Duration::from_micros(10), 2);
        let t = SimTime::from_nanos(1_000_000); // long idle: buffer full
        assert_eq!(w.stock(t), 2);
        assert!(w.try_take(t));
        // Production resumed at t; next pair at t + 10µs.
        assert_eq!(w.next_available(t), t, "one still in stock");
        assert!(w.try_take(t));
        let next = w.next_available(t);
        assert_eq!(next, t + Duration::from_micros(10));
        assert!(!w.try_take(t));
        assert!(w.try_take(next));
        assert_eq!(w.consumed(), 3);
    }

    #[test]
    fn wire_steady_state_rate() {
        // Consuming exactly at the production rate never starves or
        // overflows.
        let mut w = LinkWire::new(Duration::from_micros(10), 4);
        let mut now = SimTime::ZERO;
        for _ in 0..1000 {
            now += Duration::from_micros(10);
            assert!(w.try_take(now), "at {now}");
        }
        assert_eq!(w.produced(), 1000);
    }

    #[test]
    fn wire_waiters() {
        let mut w = LinkWire::new(Duration::from_micros(10), 2);
        assert!(!w.has_waiters());
        w.enqueue_waiter(5);
        assert!(w.has_waiters());
        assert!(!w.wake_pending());
        w.set_wake_pending(true);
        assert!(w.wake_pending());
        assert_eq!(w.pop_waiter(), Some(5));
    }

    #[test]
    fn storage_reserve_free() {
        let mut s = Storage::new(2);
        assert_eq!(s.free_cells(), 2);
        s.reserve();
        s.reserve();
        assert!(!s.available());
        assert_eq!(s.used(), 2);
        assert_eq!(s.free_cells(), 0);
        s.free();
        assert!(s.available());
        assert_eq!(s.free_cells(), 1);
        s.enqueue_waiter(9);
        assert_eq!(s.queue_len(), 1);
        assert_eq!(s.pop_waiter(), Some(9));
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    #[should_panic(expected = "storage overflow")]
    fn storage_overflow_panics() {
        let mut s = Storage::new(1);
        s.reserve();
        s.reserve();
    }
}
