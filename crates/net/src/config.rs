//! Simulator configuration — the resource-allocation knobs of Section 5.

use std::fmt;

use serde::{Deserialize, Serialize};

use qic_physics::constants;
use qic_physics::error::ErrorRates;
use qic_physics::optime::OpTimes;

use crate::routing::RoutingPolicy;
use crate::topology::{Fabric, TopologyKind};

/// Errors raised by [`NetConfig::validate`].
///
/// Every variant names the offending knob, the value it held and what a
/// valid value looks like, so callers (e.g. the Scenario layer in
/// `qic-core`) can attach context without string matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A configuration field holds a value outside its valid range.
    Field {
        /// The `NetConfig` field (or field combination) at fault.
        field: &'static str,
        /// The offending value, rendered.
        got: String,
        /// What a valid value looks like.
        expected: String,
    },
    /// The addressing grid does not fit the configured fabric.
    Fabric {
        /// The fabric that rejected the grid.
        topology: TopologyKind,
        /// Grid width it was offered.
        width: u16,
        /// Grid height it was offered.
        height: u16,
        /// The fabric's explanation (see [`TopologyKind::build`]).
        reason: String,
    },
}

impl ConfigError {
    fn field(field: &'static str, got: impl fmt::Display, expected: impl Into<String>) -> Self {
        ConfigError::Field {
            field,
            got: got.to_string(),
            expected: expected.into(),
        }
    }

    /// The name of the offending configuration field.
    pub fn field_name(&self) -> &'static str {
        match self {
            ConfigError::Field { field, .. } => field,
            ConfigError::Fabric { .. } => "topology",
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Field {
                field,
                got,
                expected,
            } => {
                write!(
                    f,
                    "invalid network config: {field} = {got}, expected {expected}"
                )
            }
            ConfigError::Fabric {
                topology,
                width,
                height,
                reason,
            } => {
                write!(
                    f,
                    "invalid network config: {topology} does not fit a \
                     {width}\u{d7}{height} grid: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full configuration of the communication simulator.
///
/// The three headline knobs are the paper's `t`, `g` and `p`
/// (Section 5.3): teleporters per T' node, generators per G node and
/// queue purifiers per P node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Grid width in T'/LQ sites (the historical field name predates the
    /// multi-topology refactor; it sizes every fabric's addressing grid).
    pub mesh_width: u16,
    /// Grid height in T'/LQ sites.
    pub mesh_height: u16,
    /// Which interconnect fabric joins the sites (the paper: a mesh).
    pub topology: TopologyKind,
    /// Which policy routes channels over the fabric (the paper:
    /// dimension-order).
    pub routing: RoutingPolicy,
    /// Teleporters per T' node (`t`), split between the X and Y sets.
    pub teleporters_per_node: u32,
    /// Generators per G node (`g`), one G node per mesh edge.
    pub generators_per_edge: u32,
    /// Queue purifiers per endpoint P node (`p`).
    pub purifiers_per_site: u32,
    /// Queue purifier depth (purification rounds per delivered pair);
    /// the paper uses 3.
    pub purify_depth: u32,
    /// Purified pairs needed per logical communication (qubits per
    /// logical qubit; the paper uses 49).
    pub outputs_per_comm: u32,
    /// Physical cells per mesh hop (teleporter spacing; ~600).
    pub hop_cells: u64,
    /// Extra ballistic cells for a turn between a router's X and Y
    /// teleporter sets (Figure 6's bold arrows).
    pub turn_cells: u64,
    /// Raw link pairs consumed per teleport (1.0 unless modelling
    /// virtual-wire purification overhead).
    pub link_cost_factor: f64,
    /// Operation time constants.
    pub times: OpTimes,
    /// Operation error rates.
    pub rates: ErrorRates,
    /// Workload seed, carried into reports for provenance. The classical
    /// correction bits it once seeded are pure coin flips with no timing
    /// effect, so the simulator no longer draws them: the seed does not
    /// change simulation behaviour.
    pub seed: u64,
    /// Safety valve: abort after this many events.
    pub max_events: u64,
}

impl NetConfig {
    /// The paper's simulation scale: 16×16 logical qubits, queue purifiers
    /// of depth 3, 49 physical qubits per logical qubit, 600-cell hops.
    pub fn paper_scale() -> Self {
        NetConfig {
            mesh_width: constants::SIM_GRID_EDGE as u16,
            mesh_height: constants::SIM_GRID_EDGE as u16,
            topology: TopologyKind::Mesh,
            routing: RoutingPolicy::DimensionOrder,
            teleporters_per_node: 16,
            generators_per_edge: 16,
            purifiers_per_site: 16,
            purify_depth: constants::SIM_PURIFY_ROUNDS,
            outputs_per_comm: constants::LEVEL2_STEANE_QUBITS,
            hop_cells: constants::DEFAULT_HOP_CELLS,
            turn_cells: 10,
            link_cost_factor: 1.0,
            times: OpTimes::ion_trap(),
            rates: ErrorRates::ion_trap(),
            seed: 2006,
            max_events: 2_000_000_000,
        }
    }

    /// A reduced scale for fast benchmarking: 8×8 grid, level-1 code
    /// (7 qubits per logical qubit), same purifier depth.
    pub fn reduced() -> Self {
        NetConfig {
            mesh_width: 8,
            mesh_height: 8,
            outputs_per_comm: constants::LEVEL1_STEANE_QUBITS,
            ..NetConfig::paper_scale()
        }
    }

    /// A tiny deterministic configuration for unit tests.
    pub fn small_test() -> Self {
        NetConfig {
            mesh_width: 4,
            mesh_height: 4,
            teleporters_per_node: 4,
            generators_per_edge: 4,
            purifiers_per_site: 2,
            purify_depth: 1,
            outputs_per_comm: 2,
            max_events: 10_000_000,
            ..NetConfig::paper_scale()
        }
    }

    /// Sets `t`, `g` and `p` together (the Figure 16 sweep axis).
    pub fn with_resources(mut self, t: u32, g: u32, p: u32) -> Self {
        self.teleporters_per_node = t;
        self.generators_per_edge = g;
        self.purifiers_per_site = p;
        self
    }

    /// Selects the interconnect fabric (the topology sweep axis).
    pub fn with_topology(mut self, kind: TopologyKind) -> Self {
        self.topology = kind;
        self
    }

    /// Selects the routing policy.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Builds the configured fabric.
    ///
    /// # Panics
    ///
    /// Panics if the grid does not fit the fabric kind (checked by
    /// [`NetConfig::validate`]).
    pub fn fabric(&self) -> Fabric {
        self.topology
            .build(self.mesh_width, self.mesh_height)
            .expect("validated configs build")
    }

    /// Raw chained pairs needed per communication
    /// (`outputs × 2^depth`; 392 at paper scale).
    pub fn raw_pairs_per_comm(&self) -> u64 {
        u64::from(self.outputs_per_comm) << self.purify_depth.min(62)
    }

    /// Whether the simulator applies bubble flow control (two free
    /// downstream storage cells required at ring-entry hops).
    ///
    /// Dimension-order routing on the mesh or hypercube is cycle-free in
    /// the channel-dependency graph, so the paper's per-link storage
    /// alone prevents deadlock. Torus wrap links and adaptive routing
    /// both close cycles; the bubble rule keeps a free cell in every
    /// ring so those configurations drain too.
    pub fn needs_bubble(&self) -> bool {
        self.routing == RoutingPolicy::MinimalAdaptive || self.topology == TopologyKind::Torus
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on a zero-sized mesh, zero resource counts,
    /// zero purifier depth/outputs, or a non-positive link cost factor.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.mesh_width == 0 || self.mesh_height == 0 {
            return Err(ConfigError::field(
                "mesh_width\u{d7}mesh_height",
                format_args!("{}\u{d7}{}", self.mesh_width, self.mesh_height),
                "positive grid dimensions",
            ));
        }
        if u32::from(self.mesh_width) * u32::from(self.mesh_height) < 2 {
            return Err(ConfigError::field(
                "mesh_width\u{d7}mesh_height",
                format_args!("{}\u{d7}{}", self.mesh_width, self.mesh_height),
                "a grid of at least two sites",
            ));
        }
        let fabric = match self.topology.build(self.mesh_width, self.mesh_height) {
            Ok(f) => f,
            Err(reason) => {
                return Err(ConfigError::Fabric {
                    topology: self.topology,
                    width: self.mesh_width,
                    height: self.mesh_height,
                    reason,
                })
            }
        };
        if self.teleporters_per_node == 0 {
            return Err(ConfigError::field(
                "teleporters_per_node",
                0,
                "at least one teleporter per node",
            ));
        }
        let classes = crate::topology::Topology::port_classes(&fabric);
        if (self.teleporters_per_node as usize) < classes {
            return Err(ConfigError::field(
                "teleporters_per_node",
                self.teleporters_per_node,
                format!(
                    "coverage of the fabric's {classes} port classes \
                     (one teleporter set per dimension)"
                ),
            ));
        }
        if self.needs_bubble() && self.teleporters_per_node < 2 {
            return Err(ConfigError::field(
                "teleporters_per_node",
                self.teleporters_per_node,
                "at least two teleporters (storage cells) per node — torus \
                 fabrics and adaptive routing use bubble flow control",
            ));
        }
        if self.generators_per_edge == 0 {
            return Err(ConfigError::field(
                "generators_per_edge",
                0,
                "at least one generator per edge",
            ));
        }
        if self.purifiers_per_site == 0 {
            return Err(ConfigError::field(
                "purifiers_per_site",
                0,
                "at least one purifier per site",
            ));
        }
        if self.purify_depth == 0 || self.purify_depth > 20 {
            return Err(ConfigError::field(
                "purify_depth",
                self.purify_depth,
                "a purifier depth in 1..=20",
            ));
        }
        if self.outputs_per_comm == 0 {
            return Err(ConfigError::field(
                "outputs_per_comm",
                0,
                "at least one purified pair per communication",
            ));
        }
        if !(self.link_cost_factor.is_finite() && self.link_cost_factor >= 1.0) {
            return Err(ConfigError::field(
                "link_cost_factor",
                self.link_cost_factor,
                "a finite factor \u{2265} 1",
            ));
        }
        if self.hop_cells == 0 {
            return Err(ConfigError::field(
                "hop_cells",
                0,
                "at least one cell per hop",
            ));
        }
        Ok(())
    }
}

impl Default for NetConfig {
    /// Same as [`NetConfig::paper_scale`].
    fn default() -> Self {
        NetConfig::paper_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_constants() {
        let c = NetConfig::paper_scale();
        assert_eq!(c.mesh_width, 16);
        assert_eq!(c.purify_depth, 3);
        assert_eq!(c.outputs_per_comm, 49);
        assert_eq!(c.raw_pairs_per_comm(), 392);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn presets_validate() {
        assert!(NetConfig::reduced().validate().is_ok());
        assert!(NetConfig::small_test().validate().is_ok());
        assert_eq!(NetConfig::default(), NetConfig::paper_scale());
    }

    #[test]
    fn with_resources() {
        let c = NetConfig::small_test().with_resources(8, 6, 2);
        assert_eq!(c.teleporters_per_node, 8);
        assert_eq!(c.generators_per_edge, 6);
        assert_eq!(c.purifiers_per_site, 2);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let base = NetConfig::small_test();
        let mut c = base.clone();
        c.mesh_width = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.teleporters_per_node = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.purify_depth = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.link_cost_factor = 0.5;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.outputs_per_comm = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.hop_cells = 0;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("at least one cell"));
    }

    #[test]
    fn errors_are_structured() {
        let mut c = NetConfig::small_test();
        c.purify_depth = 40;
        match c.validate().unwrap_err() {
            ConfigError::Field {
                field,
                got,
                expected,
            } => {
                assert_eq!(field, "purify_depth");
                assert_eq!(got, "40");
                assert!(expected.contains("1..=20"));
            }
            other => panic!("expected a field error, got {other}"),
        }
        let mut c = NetConfig::small_test().with_topology(TopologyKind::Hypercube);
        c.mesh_width = 5;
        let err = c.validate().unwrap_err();
        assert_eq!(err.field_name(), "topology");
        match err {
            ConfigError::Fabric {
                topology,
                width,
                height,
                reason,
            } => {
                assert_eq!(topology, TopologyKind::Hypercube);
                assert_eq!((width, height), (5, 4));
                assert!(reason.contains("power-of-two"));
            }
            other => panic!("expected a fabric error, got {other}"),
        }
        let mut c = NetConfig::small_test();
        c.link_cost_factor = 0.25;
        assert_eq!(c.validate().unwrap_err().field_name(), "link_cost_factor");
    }

    #[test]
    fn topology_and_routing_default_to_the_paper() {
        let c = NetConfig::paper_scale();
        assert_eq!(c.topology, TopologyKind::Mesh);
        assert_eq!(c.routing, RoutingPolicy::DimensionOrder);
        assert!(!c.needs_bubble());
    }

    #[test]
    fn topology_validation() {
        // 4×4 fits every fabric.
        for kind in TopologyKind::ALL {
            let c = NetConfig::small_test().with_topology(kind);
            assert!(c.validate().is_ok(), "{kind}");
            let _ = c.fabric();
        }
        // 5×4 is not a power of two: no hypercube.
        let mut c = NetConfig::small_test().with_topology(TopologyKind::Hypercube);
        c.mesh_width = 5;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("power-of-two"), "{err}");
    }

    #[test]
    fn teleporters_must_cover_port_classes() {
        // A dim-4 hypercube has 4 teleporter sets: t=2 would silently
        // over-provision (each set keeps ≥ 1), so validation rejects it.
        let mut c = NetConfig::small_test().with_topology(TopologyKind::Hypercube);
        c.teleporters_per_node = 2;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("port classes"), "{err}");
        c.teleporters_per_node = 4;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn bubble_configs_need_two_teleporters() {
        let mut c = NetConfig::small_test().with_topology(TopologyKind::Torus);
        assert!(c.needs_bubble());
        assert!(c.validate().is_ok());
        c.teleporters_per_node = 1;
        assert!(c.validate().is_err());

        let mut c = NetConfig::small_test().with_routing(RoutingPolicy::MinimalAdaptive);
        assert!(c.needs_bubble());
        c.teleporters_per_node = 1;
        assert!(c.validate().is_err());
        c.teleporters_per_node = 2;
        assert!(c.validate().is_ok());
    }
}
