//! Routing policies over any [`Topology`] — the second extension point
//! of the interconnect layer.
//!
//! A [`Router`] chooses the port path a logical communication's channel
//! follows when it opens. Both shipped policies are **minimal** (every
//! hop strictly decreases the distance to the destination, so routes
//! are loop-free by construction) and **deterministic** (a pure
//! function of the topology, the endpoints, and — for the adaptive
//! policy — the observed channel load, which is itself deterministic in
//! this simulator):
//!
//! * [`DimensionOrder`] greedily takes the lowest-numbered minimal
//!   port. On the mesh and torus that is the paper's X-then-Y
//!   dimension-order routing; on the hypercube it is e-cube routing.
//! * [`MinimalAdaptive`] picks, at each hop, the minimal port whose
//!   link currently carries the fewest open channels, breaking ties
//!   toward the lowest port index.

use crate::topology::{Port, Topology};

/// A channel-route selection policy.
///
/// Implementations must return **minimal** routes: `route(...).len()`
/// equals `topo.distance(src, dst)`. The simulator calls a router once
/// per logical communication, at channel-open time, and keeps the
/// returned path for the channel's lifetime (the paper's channels are
/// persistent streams, so adaptivity acts at open time, not per pair).
pub trait Router {
    /// Short lowercase name for reports and campaign labels.
    fn name(&self) -> &'static str;

    /// Chooses the port path from `src` to `dst` (dense node indices).
    ///
    /// `load` reports the number of open channels currently crossing a
    /// link index — contention-aware policies consult it, oblivious
    /// ones ignore it. The returned path must be minimal.
    fn route(
        &self,
        topo: &dyn Topology,
        src: usize,
        dst: usize,
        load: &dyn Fn(usize) -> u32,
    ) -> Vec<Port>;

    /// Whether routes are a pure function of `(topology, src, dst)` —
    /// i.e. independent of the `load` signal — so the simulator may
    /// compute each pair's route once and reuse it for every later
    /// communication between the same endpoints (the precomputed-route
    /// fast path, applied on healthy fabrics only).
    ///
    /// Defaults to `false`: contention-aware policies must keep the
    /// dynamic path. Only override to `true` when `route` ignores
    /// `load` entirely.
    fn cacheable(&self) -> bool {
        false
    }
}

/// Deterministic dimension-order (lowest-minimal-port) routing.
///
/// On the mesh this reproduces the paper's X-then-Y routes exactly; on
/// the torus it takes the shorter way around each ring (East/North on
/// antipodal ties); on the hypercube it fixes address bits in ascending
/// order (e-cube).
///
/// # Examples
///
/// ```
/// use qic_net::routing::{DimensionOrder, Router};
/// use qic_net::topology::{Coord, Mesh, Topology};
///
/// let mesh = Mesh::new(8, 8);
/// let (a, b) = (mesh.node_index(Coord::new(1, 1)), mesh.node_index(Coord::new(4, 6)));
/// let path = DimensionOrder.route(&mesh, a, b, &|_| 0);
/// assert_eq!(path.len() as u32, Topology::distance(&mesh, a, b));
/// // X hops (East = port 0) come before Y hops (North = port 2).
/// assert_eq!(path.iter().map(|p| p.0).collect::<Vec<_>>(), [0, 0, 0, 2, 2, 2, 2, 2]);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DimensionOrder;

impl Router for DimensionOrder {
    fn name(&self) -> &'static str {
        "dor"
    }

    fn cacheable(&self) -> bool {
        // Oblivious: the route never reads the load signal.
        true
    }

    fn route(
        &self,
        topo: &dyn Topology,
        src: usize,
        dst: usize,
        _load: &dyn Fn(usize) -> u32,
    ) -> Vec<Port> {
        let mut path = Vec::with_capacity(topo.distance(src, dst) as usize);
        let mut at = src;
        while at != dst {
            let port = topo
                .min_port(at, dst)
                .expect("at != dst has a minimal port");
            path.push(port);
            at = topo.neighbor(at, port).expect("minimal ports are wired");
        }
        path
    }
}

/// Minimal-adaptive routing: contention-aware with deterministic
/// tie-breaking.
///
/// At each hop the policy considers every minimal port and takes the
/// one whose link carries the fewest open channels; ties break toward
/// the lowest port index, so two runs with identical load histories
/// route identically (campaign reports stay byte-identical for any
/// worker count).
///
/// # Examples
///
/// ```
/// use qic_net::routing::{MinimalAdaptive, Router};
/// use qic_net::topology::{Coord, Mesh, Topology};
///
/// let mesh = Mesh::new(4, 4);
/// let (a, b) = (mesh.node_index(Coord::new(0, 0)), mesh.node_index(Coord::new(2, 2)));
/// // Penalise the bottom row's East links: the route detours North first
/// // but stays minimal.
/// let bottom_east = mesh.link_index(a, qic_net::topology::Port(0));
/// let path = MinimalAdaptive.route(&mesh, a, b, &|l| u32::from(l == bottom_east));
/// assert_eq!(path.len() as u32, Topology::distance(&mesh, a, b));
/// assert_eq!(path[0].0, 2, "first hop avoids the loaded East link");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinimalAdaptive;

impl Router for MinimalAdaptive {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn route(
        &self,
        topo: &dyn Topology,
        src: usize,
        dst: usize,
        load: &dyn Fn(usize) -> u32,
    ) -> Vec<Port> {
        let mut path = Vec::with_capacity(topo.distance(src, dst) as usize);
        let mut at = src;
        while at != dst {
            let port = topo
                .min_ports(at, dst)
                .into_iter()
                .min_by_key(|&p| (load(topo.link_index(at, p)), p))
                .expect("min_ports is non-empty while at != dst");
            path.push(port);
            at = topo.neighbor(at, port).expect("minimal ports are wired");
        }
        path
    }
}

/// Which routing policy a [`crate::config::NetConfig`] selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum RoutingPolicy {
    /// [`DimensionOrder`]: the paper's oblivious X-then-Y routing.
    DimensionOrder,
    /// [`MinimalAdaptive`]: contention-aware, deterministically
    /// tie-broken.
    MinimalAdaptive,
}

impl RoutingPolicy {
    /// Every policy, in sweep order.
    pub const ALL: [RoutingPolicy; 2] = [
        RoutingPolicy::DimensionOrder,
        RoutingPolicy::MinimalAdaptive,
    ];

    /// The policy's router implementation.
    pub fn router(self) -> Box<dyn Router> {
        match self {
            RoutingPolicy::DimensionOrder => Box::new(DimensionOrder),
            RoutingPolicy::MinimalAdaptive => Box::new(MinimalAdaptive),
        }
    }

    /// The policy's short label (`"dor"`, `"adaptive"`).
    pub fn label(self) -> &'static str {
        match self {
            RoutingPolicy::DimensionOrder => "dor",
            RoutingPolicy::MinimalAdaptive => "adaptive",
        }
    }

    /// Parses a campaign label (`"dor"`, `"adaptive"`).
    pub fn parse(label: &str) -> Option<RoutingPolicy> {
        match label {
            "dor" => Some(RoutingPolicy::DimensionOrder),
            "adaptive" => Some(RoutingPolicy::MinimalAdaptive),
            _ => None,
        }
    }
}

impl std::fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for RoutingPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        RoutingPolicy::parse(s).ok_or_else(|| format!("unknown routing policy {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Coord, Hypercube, Mesh, Topology, Torus};

    fn no_load(_: usize) -> u32 {
        0
    }

    #[test]
    fn dor_matches_legacy_mesh_routes() {
        let mesh = Mesh::new(8, 8);
        for (from, to) in [
            (Coord::new(1, 1), Coord::new(4, 6)),
            (Coord::new(7, 0), Coord::new(0, 3)),
            (Coord::new(3, 3), Coord::new(3, 3)),
        ] {
            let legacy: Vec<_> = mesh.route(from, to).iter().map(|d| d.port()).collect();
            let ported =
                DimensionOrder.route(&mesh, mesh.node_index(from), mesh.node_index(to), &no_load);
            assert_eq!(legacy, ported, "{from} -> {to}");
        }
    }

    #[test]
    fn dor_takes_the_short_way_around_the_torus() {
        let torus = Torus::new(8, 8);
        let a = torus.node_index(Coord::new(0, 0));
        let b = torus.node_index(Coord::new(7, 7));
        let path = DimensionOrder.route(&torus, a, b, &no_load);
        // One West hop, one South hop.
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].0, 1);
        assert_eq!(path[1].0, 3);
    }

    #[test]
    fn dor_is_ecube_on_the_hypercube() {
        let cube = Hypercube::new(6);
        let path = DimensionOrder.route(&cube, 0b000000, 0b110100, &no_load);
        let ports: Vec<u8> = path.iter().map(|p| p.0).collect();
        assert_eq!(ports, vec![2, 4, 5], "bits fixed in ascending order");
    }

    #[test]
    fn adaptive_prefers_unloaded_links() {
        let torus = Torus::new(6, 6);
        let a = torus.node_index(Coord::new(0, 0));
        let b = torus.node_index(Coord::new(3, 0));
        // Antipodal in x: East and West both minimal. Load East heavily.
        let east_link = torus.link_index(a, crate::topology::Dir::East.port());
        let path = MinimalAdaptive.route(&torus, a, b, &|l| u32::from(l == east_link) * 5);
        assert_eq!(path.len(), 3);
        assert_eq!(path[0].0, 1, "first hop dodges the loaded East link");
        // Unloaded, the tie breaks East.
        let tie = MinimalAdaptive.route(&torus, a, b, &no_load);
        assert_eq!(tie[0].0, 0);
    }

    #[test]
    fn both_policies_are_minimal_and_deterministic() {
        let cube = Hypercube::new(5);
        for (src, dst) in [(0usize, 31usize), (5, 9), (17, 17), (1, 30)] {
            for policy in RoutingPolicy::ALL {
                let r = policy.router();
                let a = r.route(&cube, src, dst, &no_load);
                let b = r.route(&cube, src, dst, &no_load);
                assert_eq!(a, b, "routing must be deterministic");
                assert_eq!(a.len() as u32, cube.distance(src, dst));
            }
        }
    }

    #[test]
    fn policy_labels_round_trip() {
        for policy in RoutingPolicy::ALL {
            assert_eq!(RoutingPolicy::parse(&policy.to_string()), Some(policy));
            assert_eq!(policy.to_string().parse::<RoutingPolicy>(), Ok(policy));
        }
        assert!("valiant".parse::<RoutingPolicy>().is_err());
        assert_eq!(RoutingPolicy::DimensionOrder.to_string(), "dor");
        assert_eq!(RoutingPolicy::MinimalAdaptive.to_string(), "adaptive");
    }
}
