//! The event-driven communication simulator — **Section 5**.
//!
//! A logical communication opens a *channel*: a minimal route of
//! teleport hops from source to destination, chosen by the configured
//! [`Router`] over the configured [`Topology`] (the paper's setup is
//! dimension-order routing on a mesh). The channel streams
//! `outputs × 2^depth` chained EPR pairs; every hop consumes one link pair
//! from the link's G node, one teleporter slot in the router's
//! per-dimension-set pool, and one storage cell at the downstream router
//! (non-multiplexed per incoming link). Arriving pairs cascade through
//! the endpoint's queue purifiers; when enough purified pairs
//! accumulate, the logical qubit is teleported and the driver is
//! notified.
//!
//! All contention is explicit: teleporter sets are time-multiplexed FIFO,
//! wires produce at finite rate into bounded buffers, and storage exerts
//! backpressure upstream. On fabrics whose channel-dependency graph has
//! cycles (torus wraps, adaptive routing) the simulator additionally
//! applies **bubble flow control**: a hop that enters a new dimension
//! ring — injection or a class change — must leave one downstream
//! storage cell free, so a ring can never fill completely and deadlock.
//! Determinism: strict FIFO tie-breaking throughout — every run with
//! the same configuration replays the identical event sequence.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::rc::Rc;

use qic_des::queue::EventQueue;
use qic_des::stats::{Percentiles, Tally};
use qic_des::time::SimTime;
use qic_physics::time::Duration;
use qic_probe::{EventKind, FabricInfo, NoProbe, Probe, StallCause};

use crate::config::NetConfig;
use crate::report::{FaultStats, NetReport};
use crate::routing::Router;
use crate::topology::{Coord, Fabric, Port, Topology};

/// Identifier of a logical communication within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommId(pub u32);

/// How a communication finished.
///
/// On healthy fabrics every communication is [`CommOutcome::Delivered`].
/// Over a fault-aware topology (`qic-fault`'s `DegradedFabric`) a
/// communication whose endpoints are dead or disconnected finishes
/// immediately as [`CommOutcome::Unreachable`] — a structured outcome
/// the driver can react to, instead of a simulator hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommOutcome {
    /// The logical qubit teleported to its destination.
    Delivered,
    /// No surviving path (or a dead endpoint); nothing moved.
    Unreachable,
}

/// Completion record handed to the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommDone {
    /// The completed communication.
    pub id: CommId,
    /// Caller-supplied tag.
    pub tag: u64,
    /// Channel source.
    pub src: Coord,
    /// Channel destination.
    pub dst: Coord,
    /// Submission time.
    pub issued_at: SimTime,
    /// Completion time (data teleport finished, or the drop decision).
    pub completed_at: SimTime,
    /// Whether the data arrived or the communication was dropped.
    pub outcome: CommOutcome,
}

/// The workload side of a simulation: submits communications and reacts
/// to completions. Implemented by the layout schedulers in `qic-core`.
pub trait Driver {
    /// Called once at time zero; submit the initial communications here.
    fn start(&mut self, api: &mut SimApi<'_>);

    /// Called whenever a communication completes.
    fn on_complete(&mut self, done: CommDone, api: &mut SimApi<'_>);

    /// Called when a timer set by [`SimApi::notify_after`] fires. Layout
    /// schedulers use this to model logical gate latency between a
    /// channel's completion and the follow-up communication.
    fn on_notify(&mut self, tag: u64, api: &mut SimApi<'_>) {
        let _ = (tag, api);
    }
}

/// A driver that submits exactly one communication.
#[derive(Debug, Clone)]
pub struct OneShotDriver {
    src: Coord,
    dst: Coord,
    /// Completion record, if finished.
    pub done: Option<CommDone>,
}

impl OneShotDriver {
    /// One communication from `src` to `dst`.
    pub fn new(src: Coord, dst: Coord) -> Self {
        OneShotDriver {
            src,
            dst,
            done: None,
        }
    }
}

impl Driver for OneShotDriver {
    fn start(&mut self, api: &mut SimApi<'_>) {
        api.submit_now(self.src, self.dst, 0);
    }

    fn on_complete(&mut self, done: CommDone, _api: &mut SimApi<'_>) {
        self.done = Some(done);
    }
}

/// A driver that submits a fixed batch at time zero.
#[derive(Debug, Clone)]
pub struct BatchDriver {
    batch: Vec<(Coord, Coord)>,
    /// Completion records in completion order.
    pub completions: Vec<CommDone>,
}

impl BatchDriver {
    /// Submits every `(src, dst)` pair at start.
    pub fn new(batch: Vec<(Coord, Coord)>) -> Self {
        BatchDriver {
            batch,
            completions: Vec::new(),
        }
    }
}

impl Driver for BatchDriver {
    fn start(&mut self, api: &mut SimApi<'_>) {
        for (i, &(src, dst)) in self.batch.iter().enumerate() {
            api.submit_now(src, dst, i as u64);
        }
    }

    fn on_complete(&mut self, done: CommDone, _api: &mut SimApi<'_>) {
        self.completions.push(done);
    }
}

// ---------------------------------------------------------------------------
// Events and world state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum Event {
    /// The comm's head-of-line pair attempts injection at the source.
    SourceTry { comm: u32 },
    /// A chained pair finished a teleport hop.
    TeleportDone { token: u32 },
    /// A wire may have produced pairs for its waiters.
    WireWake { edge: u32 },
    /// A purifier unit finished a cascade job.
    PurifyDone {
        site: u32,
        comm: u32,
        ops: u32,
        produces: bool,
    },
    /// The final data teleport of a communication finished.
    DataTeleportDone { comm: u32 },
    /// A communication with no surviving path is dropped (fault-aware
    /// topologies only).
    Dropped { comm: u32 },
    /// A deferred driver submission.
    Submit { src: Coord, dst: Coord, tag: u64 },
    /// A driver timer.
    Notify { tag: u64 },
}

/// Waiter-id encoding: tokens use their index, comm sources set the high
/// bit.
const SOURCE_FLAG: u64 = 1 << 63;

#[derive(Debug, Clone, Copy)]
struct Token {
    comm: u32,
    /// Index into the comm's route nodes where the pair currently sits.
    pos: u16,
    alive: bool,
}

/// Everything one hop of a channel needs, precomputed at route-build
/// time so the per-event hot path is pure array lookups — no topology
/// virtual calls, no port arithmetic.
#[derive(Debug, Clone, Copy)]
struct Hop {
    /// Link crossed by this hop.
    link: u32,
    /// Teleporter pool serving this hop (`node * classes + class`).
    teleset: u32,
    /// Storage bank at the landing node (`next * ports + incoming`).
    storage: u32,
    /// Service time: turn penalty (dimension change) + local teleport.
    service: Duration,
    /// Whether this hop enters a new dimension ring (injection or a
    /// port-class change) — the bubble-flow-control reserve point.
    ring_entry: bool,
}

/// A fully precomputed channel route, shared via `Rc` between the
/// owning [`Comm`] and the per-pair route cache (dimension-order
/// routes are pure functions of the endpoints, so healthy fabrics
/// build each pair's path once).
#[derive(Debug)]
struct RoutePath {
    /// Per-hop resource indices and service times.
    hops: Vec<Hop>,
    /// Purifier site at the destination (dense node index).
    dst_site: u32,
    purify_op_time: Duration,
    data_teleport_time: Duration,
}

#[derive(Debug)]
struct Comm {
    src: Coord,
    dst: Coord,
    tag: u64,
    /// The channel's precomputed route.
    path: Rc<RoutePath>,
    raw_to_spawn: u64,
    arrivals: u64,
    outputs: u64,
    needed_outputs: u64,
    issued_at: SimTime,
    source_waiting: bool,
    done: bool,
}

// --- struct-of-arrays resource state ----------------------------------
//
// The per-instance resource structs in `crate::resources` remain the
// documented reference models; the simulator keeps the same state as
// parallel flat vectors over the dense indices `Topology` provides, so
// the hot path touches one primitive array per field instead of
// pointer-chasing whole structs. Shared scalars (wire interval/cap,
// storage capacity, purifier units — uniform across instances by
// construction) are stored once.

/// Marks an empty intrusive list slot / the end of a chain.
const NO_WAITER: u32 = u32::MAX;

/// Intrusive FIFO waiter lists for every stallable resource, in one
/// arena. The previous layout kept a `VecDeque` per resource instance —
/// cloning ~160 of them dominated simulator construction. Here every
/// resource owns only a `(head, tail)` slot pair in `lists`; the queued
/// entries live in a shared node pool (`next`/`payload`) recycled
/// through `free`, so constructing the arena is one allocation no
/// matter how many resources the fabric has.
///
/// Resource ids share one dense space, offsets fixed at construction:
/// telesets first, then storages, then wires, then purifier sites.
#[derive(Debug)]
struct Waiters {
    /// Interleaved `head, tail` per resource id; `NO_WAITER` = empty.
    lists: Vec<u32>,
    next: Vec<u32>,
    payload: Vec<u64>,
    free: Vec<u32>,
}

impl Waiters {
    fn new(resources: usize) -> Waiters {
        Waiters {
            lists: vec![NO_WAITER; resources * 2],
            next: Vec::new(),
            payload: Vec::new(),
            free: Vec::new(),
        }
    }

    #[inline]
    fn is_empty(&self, id: usize) -> bool {
        self.lists[id * 2] == NO_WAITER
    }

    #[inline]
    fn push_back(&mut self, id: usize, value: u64) {
        let node = match self.free.pop() {
            Some(n) => {
                self.next[n as usize] = NO_WAITER;
                self.payload[n as usize] = value;
                n
            }
            None => {
                let n = u32::try_from(self.next.len()).expect("waiter nodes fit u32");
                self.next.push(NO_WAITER);
                self.payload.push(value);
                n
            }
        };
        let tail = self.lists[id * 2 + 1];
        if tail == NO_WAITER {
            self.lists[id * 2] = node;
        } else {
            self.next[tail as usize] = node;
        }
        self.lists[id * 2 + 1] = node;
    }

    #[inline]
    fn pop_front(&mut self, id: usize) -> Option<u64> {
        let head = self.lists[id * 2];
        if head == NO_WAITER {
            return None;
        }
        let h = head as usize;
        let next = self.next[h];
        self.lists[id * 2] = next;
        if next == NO_WAITER {
            self.lists[id * 2 + 1] = NO_WAITER;
        }
        self.free.push(head);
        Some(self.payload[h])
    }

    /// Queued waiters on `id` — walks the chain; used only to budget
    /// drains, where chains are short by construction.
    fn len(&self, id: usize) -> usize {
        let mut n = 0;
        let mut at = self.lists[id * 2];
        while at != NO_WAITER {
            n += 1;
            at = self.next[at as usize];
        }
        n
    }
}

/// Teleporter pools, `node * port_classes + port_class` (Figure 6's
/// per-dimension sets). Capacity varies per node on degraded fabrics.
#[derive(Debug)]
struct Telesets {
    capacity: Vec<u32>,
    busy: Vec<u32>,
    /// Busy-time integrals for utilization reporting (widened to `u128`
    /// at report time; `u64` nanoseconds hold ~584 years of busy time).
    busy_ns: Vec<u64>,
}

impl Telesets {
    #[inline]
    fn available(&self, i: usize) -> bool {
        self.busy[i] < self.capacity[i]
    }

    #[inline]
    fn acquire(&mut self, i: usize, hold: Duration) {
        debug_assert!(self.available(i), "acquire on a full pool");
        self.busy[i] += 1;
        self.busy_ns[i] += hold.as_nanos();
    }

    #[inline]
    fn release(&mut self, i: usize) {
        debug_assert!(self.busy[i] > 0, "release without acquire");
        self.busy[i] -= 1;
    }
}

/// Link-pair wires by link index (Figure 5's G nodes). Every wire
/// shares the config-derived production interval and buffer cap.
#[derive(Debug)]
struct Wires {
    interval: Duration,
    cap: u64,
    stock: Vec<u64>,
    /// Completion time of the pair in production (meaningful only
    /// while `stock < cap`).
    next_ready: Vec<SimTime>,
    produced: Vec<u64>,
    consumed: Vec<u64>,
    /// Whether a wake event is already scheduled for the wire.
    wake_pending: Vec<bool>,
}

impl Wires {
    /// Brings wire `i`'s lazy production up to date with the clock —
    /// integer-exact, so behaviour is independent of observation times.
    ///
    /// Closed form of the produce-one-per-interval loop: with the next
    /// completion at `next ≤ now`, `(now − next) / interval + 1` pairs
    /// have finished; production pauses when the buffer fills, keeping
    /// the *last* completion time (the filling step does not advance
    /// `next_ready` — it resumes from consumption instead).
    #[inline]
    fn refresh(&mut self, i: usize, now: SimTime) {
        let stock = self.stock[i];
        if stock >= self.cap || self.next_ready[i] > now {
            return;
        }
        let interval = self.interval.as_nanos();
        let next = self.next_ready[i].as_nanos();
        let avail = (now.as_nanos() - next) / interval + 1;
        let k = avail.min(self.cap - stock);
        self.stock[i] = stock + k;
        self.produced[i] += k;
        let steps = if stock + k == self.cap { k - 1 } else { k };
        self.next_ready[i] = SimTime::from_nanos(next + steps * interval);
    }

    /// Consumes one pair from a **refreshed** wire with stock.
    #[inline]
    fn take_refreshed(&mut self, i: usize, now: SimTime) {
        debug_assert!(self.stock[i] > 0, "take on an empty wire");
        if self.stock[i] == self.cap {
            // Production was paused at full buffer; it resumes now.
            self.next_ready[i] = now + self.interval;
        }
        self.stock[i] -= 1;
        self.consumed[i] += 1;
    }
}

/// Per-(node, incoming-link) storage cells (§5.3: not multiplexed).
/// Capacity is uniform: `teleporters_per_node` cells per link.
#[derive(Debug)]
struct Storages {
    capacity: u32,
    used: Vec<u32>,
}

impl Storages {
    #[inline]
    fn free_cells(&self, i: usize) -> u32 {
        self.capacity - self.used[i]
    }

    #[inline]
    fn reserve(&mut self, i: usize) {
        debug_assert!(self.used[i] < self.capacity, "storage overflow");
        self.used[i] += 1;
    }

    #[inline]
    fn free(&mut self, i: usize) {
        assert!(self.used[i] > 0, "free on empty storage");
        self.used[i] -= 1;
    }
}

/// Endpoint purifier sites by node index; every site has the same
/// configured unit count. Jobs waiting for a unit queue in the shared
/// [`Waiters`] arena as packed words (see [`pack_purify_job`]).
#[derive(Debug)]
struct Purifiers {
    units: u32,
    busy: Vec<u32>,
    busy_ns: Vec<u64>,
}

/// Packs a queued purifier job into a [`Waiters`] payload word:
/// `comm` in the low 32 bits, `ops` above it, `produces` in the top
/// bit. The job duration is not stored — it is recomputed on dequeue
/// from the comm's route (`purify_op_time × ops`, the same
/// multiplication that produced it, hence the identical value).
#[inline]
fn pack_purify_job(comm: u32, ops: u32, produces: bool) -> u64 {
    debug_assert!(ops < 1 << 31, "purify cascade depth fits 31 bits");
    u64::from(comm) | u64::from(ops) << 32 | u64::from(produces) << 63
}

#[inline]
fn unpack_purify_job(word: u64) -> (u32, u32, bool) {
    (
        word as u32,
        (word >> 32) as u32 & 0x7fff_ffff,
        word >> 63 != 0,
    )
}

/// Hasher for the route cache: keys are already well-mixed
/// `(src << 32) | dst` pairs, so one multiply-rotate round suffices
/// (no external hash crates in this workspace).
#[derive(Default)]
struct PairHasher(u64);

impl Hasher for PairHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("route-cache keys hash as u64");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(29);
    }
}

/// Fabrics at or below this node count use the direct-indexed dense
/// route table (`nodes²` slots of `Option<Rc<_>>` — null-niche, so the
/// empty table is one zeroed allocation).
const DENSE_CACHE_MAX_NODES: usize = 64;

/// The per-pair route cache, armed only when the router declares its
/// routes load-independent ([`Router::cacheable`]) and the fabric is
/// healthy; adaptive and degraded cases keep the dynamic path.
enum RouteCache {
    /// Every communication routes dynamically.
    Off,
    /// Direct-indexed `src * nodes + dst` table for small fabrics.
    Dense(Vec<Option<Rc<RoutePath>>>),
    /// Hash table for fabrics where `nodes²` slots would be wasteful.
    Sparse(HashMap<u64, Rc<RoutePath>, BuildHasherDefault<PairHasher>>),
}

/// The teleporters of one dimension set: `t` split as evenly as possible
/// across the fabric's port classes (the mesh's X set rounds up, exactly
/// as in Figure 6). [`World::new`] requires `t ≥ classes`, so every
/// class gets at least one without inflating the per-node budget.
fn teleset_share(t: u32, classes: usize, class: usize) -> u32 {
    let classes = classes as u32;
    let base = t / classes;
    let extra = u32::from((class as u32) < t % classes);
    (base + extra).max(1)
}

struct World<T: Topology, P: Probe> {
    cfg: NetConfig,
    /// Instrumentation sink. Every hook call site is guarded by
    /// `P::ACTIVE`, a compile-time constant, so with the default
    /// [`NoProbe`] the probe costs nothing — field, guards and argument
    /// computation all vanish in codegen.
    probe: P,
    topo: T,
    router: Box<dyn Router>,
    /// Cached `topo.ports_per_node()`.
    ports_per_node: usize,
    /// Cached `topo.port_classes()`.
    classes: usize,
    /// Whether bubble flow control is active (cyclic fabric or adaptive
    /// routing; see [`NetConfig::needs_bubble`]).
    bubble: bool,
    /// Cached `topo.fault_aware()`: gates drop/reroute accounting and
    /// the report's fault block, so healthy runs cost (and emit) nothing.
    fault_aware: bool,
    /// Cached `topo.link_penalties()`: gates the per-hop
    /// `hop_penalty_ns` lookup, so fabrics without a penalty model pay
    /// nothing on the hot path.
    penalties: bool,
    queue: EventQueue<Event>,
    comms: Vec<Comm>,
    tokens: Vec<Token>,
    free_tokens: Vec<u32>,
    /// Teleporter pools: `node_index * port_classes + port_class`.
    telesets: Telesets,
    /// Link wires by link index.
    wires: Wires,
    /// Storage: `node_index * ports_per_node + incoming port index`.
    storage: Storages,
    /// Purifier sites by node index.
    sites: Purifiers,
    /// One waiter arena for all stallable resources. Telesets use their
    /// own index; the other kinds add these offsets.
    waiters: Waiters,
    wait_storage0: usize,
    wait_wire0: usize,
    wait_site0: usize,
    /// Precomputed per-hop service constants (`cfg.times` is fixed for
    /// the run, so the turn penalty and local teleport time are too).
    hop_time: Duration,
    turn_time: Duration,
    route_cache: RouteCache,
    /// Open channels per link — the contention signal adaptive routing
    /// consults.
    channel_load: Vec<u32>,
    live_comms: u64,
    // statistics
    teleport_ops: u64,
    purify_ops: u64,
    purified_outputs: u64,
    teleporter_stalls: u64,
    wire_stalls: u64,
    storage_stalls: u64,
    comms_completed: u64,
    comms_dropped: u64,
    comms_rerouted: u64,
    /// Sum over delivered comms of `routed hops / healthy hops`.
    route_inflation_sum: f64,
    comm_latency_us: Tally,
    /// Raw per-communication latencies (µs), kept for exact
    /// end-of-run percentiles.
    latency_samples: Vec<f64>,
}

/// The non-generic slice of [`World`] the driver-facing API needs, so
/// [`SimApi`] (and therefore [`Driver`]) stays independent of the
/// topology type parameter.
trait WorldApi {
    fn now(&self) -> SimTime;
    fn submit(&mut self, src: Coord, dst: Coord, tag: u64) -> CommId;
    fn schedule_submit(&mut self, delay: Duration, src: Coord, dst: Coord, tag: u64);
    fn schedule_notify(&mut self, delay: Duration, tag: u64);
    fn live_comms(&self) -> u64;
}

impl<T: Topology, P: Probe> WorldApi for World<T, P> {
    fn now(&self) -> SimTime {
        self.queue.now()
    }

    fn submit(&mut self, src: Coord, dst: Coord, tag: u64) -> CommId {
        World::submit(self, src, dst, tag)
    }

    fn schedule_submit(&mut self, delay: Duration, src: Coord, dst: Coord, tag: u64) {
        self.queue
            .schedule_after(delay, Event::Submit { src, dst, tag });
    }

    fn schedule_notify(&mut self, delay: Duration, tag: u64) {
        self.queue.schedule_after(delay, Event::Notify { tag });
    }

    fn live_comms(&self) -> u64 {
        self.live_comms
    }
}

/// The driver-facing API: submit communications, read the clock.
pub struct SimApi<'a> {
    world: &'a mut (dyn WorldApi + 'a),
}

impl SimApi<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// Submits a communication immediately. Returns its id.
    pub fn submit_now(&mut self, src: Coord, dst: Coord, tag: u64) -> CommId {
        self.world.submit(src, dst, tag)
    }

    /// Submits a communication after a delay (e.g. a logical gate time).
    pub fn submit_after(&mut self, delay: Duration, src: Coord, dst: Coord, tag: u64) {
        self.world.schedule_submit(delay, src, dst, tag);
    }

    /// Requests a [`Driver::on_notify`] callback after `delay`.
    pub fn notify_after(&mut self, delay: Duration, tag: u64) {
        self.world.schedule_notify(delay, tag);
    }

    /// Communications submitted so far that have not completed.
    pub fn live_comms(&self) -> u64 {
        self.world.live_comms()
    }
}

// ---------------------------------------------------------------------------
// World mechanics
// ---------------------------------------------------------------------------

impl<T: Topology, P: Probe> World<T, P> {
    fn new(cfg: NetConfig, topo: T, router: Box<dyn Router>, mut probe: P) -> World<T, P> {
        cfg.validate().expect("configuration must validate");
        let nodes = topo.nodes();
        let classes = topo.port_classes();
        let ports_per_node = topo.ports_per_node();
        let t = cfg.teleporters_per_node;
        // `NetConfig::validate` checks these against the config's own
        // fabric; re-check against the topology actually supplied, which
        // may differ via `NetworkSim::with_topology` / `with_router`.
        assert!(
            t as usize >= classes,
            "teleporters_per_node ({t}) must cover the fabric's {classes} \
             port classes (one teleporter set per dimension)"
        );
        let bubble = cfg.needs_bubble() || !topo.dor_is_acyclic();
        assert!(
            !bubble || t >= 2,
            "bubble flow control (cyclic fabric or adaptive routing) needs \
             at least two storage cells per link, i.e. teleporters_per_node ≥ 2"
        );
        let mut teleset_capacity = Vec::with_capacity(nodes * classes);
        for node in 0..nodes {
            // Fault-aware topologies may degrade a node's teleporter
            // pool; healthy fabrics keep the configured budget.
            let t_node = topo.teleporter_capacity(node, t);
            for class in 0..classes {
                teleset_capacity.push(teleset_share(t_node, classes, class));
            }
        }
        let telesets = Telesets {
            capacity: teleset_capacity,
            busy: vec![0; nodes * classes],
            busy_ns: vec![0; nodes * classes],
        };
        let storage = Storages {
            capacity: t.max(1),
            used: vec![0; nodes * ports_per_node],
        };
        let sites = Purifiers {
            units: cfg.purifiers_per_site,
            busy: vec![0; nodes],
            busy_ns: vec![0; nodes],
        };
        // One pair per tgen per generator; `link_cost_factor` models extra
        // raw-pair consumption (virtual-wire purification).
        let tgen = cfg.times.generate();
        let interval_ns = (tgen.as_nanos() as f64 * cfg.link_cost_factor
            / f64::from(cfg.generators_per_edge))
        .round()
        .max(1.0) as u64;
        let links = topo.links();
        let interval = Duration::from_nanos(interval_ns);
        let wires = Wires {
            interval,
            cap: u64::from(cfg.teleporters_per_node.max(1)),
            stock: vec![0; links],
            next_ready: vec![SimTime::ZERO + interval; links],
            produced: vec![0; links],
            consumed: vec![0; links],
            wake_pending: vec![false; links],
        };
        let wait_storage0 = nodes * classes;
        let wait_wire0 = wait_storage0 + nodes * ports_per_node;
        let wait_site0 = wait_wire0 + links;
        let waiters = Waiters::new(wait_site0 + nodes);
        let channel_load = vec![0; links];
        let fault_aware = topo.fault_aware();
        let penalties = topo.link_penalties();
        let route_cache = if router.cacheable() && !fault_aware {
            if nodes <= DENSE_CACHE_MAX_NODES {
                RouteCache::Dense(vec![None; nodes * nodes])
            } else {
                RouteCache::Sparse(HashMap::default())
            }
        } else {
            RouteCache::Off
        };
        let hop_time = cfg.times.teleport(cfg.hop_cells);
        let turn_time = cfg.times.ballistic(cfg.turn_cells);
        if P::ACTIVE {
            probe.on_fabric(&FabricInfo {
                topology: topo.name().to_string(),
                width: topo.width(),
                height: topo.height(),
                nodes: u32::try_from(nodes).expect("node counts fit u32"),
                links: u32::try_from(links).expect("link counts fit u32"),
                port_classes: u32::try_from(classes).expect("port classes fit u32"),
                ports_per_node: u32::try_from(ports_per_node).expect("port counts fit u32"),
                teleset_capacity: telesets.capacity.clone(),
                storage_capacity: storage.capacity,
                purifier_units: sites.units,
            });
        }
        World {
            cfg,
            probe,
            topo,
            router,
            ports_per_node,
            classes,
            bubble,
            fault_aware,
            penalties,
            // Steady state keeps a handful of events in flight per live
            // comm; 32 slots absorb the common case without a regrow.
            queue: EventQueue::with_capacity(32),
            comms: Vec::new(),
            tokens: Vec::new(),
            free_tokens: Vec::new(),
            telesets,
            wires,
            storage,
            sites,
            waiters,
            wait_storage0,
            wait_wire0,
            wait_site0,
            hop_time,
            turn_time,
            route_cache,
            channel_load,
            live_comms: 0,
            teleport_ops: 0,
            purify_ops: 0,
            purified_outputs: 0,
            teleporter_stalls: 0,
            wire_stalls: 0,
            storage_stalls: 0,
            comms_completed: 0,
            comms_dropped: 0,
            comms_rerouted: 0,
            route_inflation_sum: 0.0,
            comm_latency_us: Tally::new(),
            latency_samples: Vec::new(),
        }
    }

    fn submit(&mut self, src: Coord, dst: Coord, tag: u64) -> CommId {
        assert!(
            self.topo.contains(src) && self.topo.contains(dst),
            "endpoints must be on the fabric grid"
        );
        let id = u32::try_from(self.comms.len()).expect("communication ids fit u32");
        let s = self.topo.node_index(src);
        let d = self.topo.node_index(dst);
        if self.fault_aware && !self.topo.is_reachable(s, d) {
            // No surviving path (or a dead endpoint): surface a
            // structured Unreachable outcome instead of hanging. The
            // drop completes through the normal event flow so drivers
            // still see every submission finish.
            let comm = Comm {
                src,
                dst,
                tag,
                path: Rc::new(RoutePath {
                    hops: Vec::new(),
                    dst_site: 0,
                    purify_op_time: Duration::ZERO,
                    data_teleport_time: Duration::ZERO,
                }),
                raw_to_spawn: 0,
                arrivals: 0,
                outputs: 0,
                needed_outputs: 0,
                issued_at: self.queue.now(),
                source_waiting: false,
                done: false,
            };
            self.comms.push(comm);
            self.live_comms += 1;
            if P::ACTIVE {
                self.probe.on_submit(self.queue.now().as_nanos(), id, 0);
            }
            self.queue.schedule_now(Event::Dropped { comm: id });
            return CommId(id);
        }
        let path = self.route_path(s, d);
        for hop in &path.hops {
            self.channel_load[hop.link as usize] += 1;
        }
        if self.fault_aware {
            // Detour accounting: routed hops vs the healthy fabric's
            // minimal distance.
            let healthy = self.topo.healthy_distance(s, d);
            if path.hops.len() as u32 > healthy {
                self.comms_rerouted += 1;
                if P::ACTIVE {
                    self.probe.on_reroute(self.queue.now().as_nanos(), id);
                }
            }
            self.route_inflation_sum += if healthy == 0 {
                1.0
            } else {
                path.hops.len() as f64 / f64::from(healthy)
            };
        }
        let hops = path.hops.len();
        let dt = path.data_teleport_time;
        let comm = Comm {
            src,
            dst,
            tag,
            path,
            raw_to_spawn: self.cfg.raw_pairs_per_comm(),
            arrivals: 0,
            outputs: 0,
            needed_outputs: u64::from(self.cfg.outputs_per_comm),
            issued_at: self.queue.now(),
            source_waiting: false,
            done: false,
        };
        self.live_comms += 1;
        self.comms.push(comm);
        if P::ACTIVE {
            self.probe.on_submit(
                self.queue.now().as_nanos(),
                id,
                u32::try_from(hops).expect("route length fits u32"),
            );
        }
        if hops == 0 {
            // Co-located endpoints: only the local data handoff remains.
            self.queue
                .schedule_after(dt, Event::DataTeleportDone { comm: id });
        } else {
            self.queue.schedule_now(Event::SourceTry { comm: id });
        }
        CommId(id)
    }

    // --- route precomputation -----------------------------------------

    /// The route for `(s, d)`: served from the per-pair cache when the
    /// router's routes are load-independent and the fabric is healthy,
    /// otherwise freshly routed (adaptive policies read the live
    /// channel load; degraded fabrics stay on the dynamic path).
    fn route_path(&mut self, s: usize, d: usize) -> Rc<RoutePath> {
        let nodes = self.topo.nodes();
        match &self.route_cache {
            RouteCache::Dense(table) => {
                if let Some(path) = &table[s * nodes + d] {
                    return Rc::clone(path);
                }
            }
            RouteCache::Sparse(map) => {
                if let Some(path) = map.get(&(((s as u64) << 32) | d as u64)) {
                    return Rc::clone(path);
                }
            }
            RouteCache::Off => {}
        }
        let ports = {
            let topo = &self.topo;
            let load = &self.channel_load;
            self.router.route(topo, s, d, &|link| load[link])
        };
        debug_assert_eq!(
            ports.len() as u32,
            self.topo.distance(s, d),
            "routers must return minimal routes"
        );
        let path = Rc::new(self.build_path(s, d, ports));
        match &mut self.route_cache {
            RouteCache::Dense(table) => table[s * nodes + d] = Some(Rc::clone(&path)),
            RouteCache::Sparse(map) => {
                map.insert(((s as u64) << 32) | d as u64, Rc::clone(&path));
            }
            RouteCache::Off => {}
        }
        path
    }

    /// Precomputes every per-hop quantity the event loop needs: resource
    /// indices (the same arithmetic the per-hop helpers used to redo per
    /// event), ring-entry flags, and service times.
    fn build_path(&self, s: usize, d: usize, ports: Vec<Port>) -> RoutePath {
        let mut hops = Vec::with_capacity(ports.len());
        let mut at = s;
        // `usize::MAX` never equals a real class, so hop 0 enters a ring.
        let mut prev_class = usize::MAX;
        for (pos, &port) in ports.iter().enumerate() {
            let class = self.topo.port_class(port);
            let link = self.topo.link_index(at, port);
            let next = self
                .topo
                .neighbor(at, port)
                .expect("routes follow wired ports");
            let incoming = self.topo.reverse_port(at, port);
            let ring_entry = class != prev_class;
            // Turn penalty (dimension change) plus the local teleport
            // operations plus the classical notification.
            let service = if pos > 0 && ring_entry {
                self.turn_time + self.hop_time
            } else {
                self.hop_time
            };
            hops.push(Hop {
                link: u32::try_from(link).expect("link indices fit u32"),
                teleset: u32::try_from(at * self.classes + class).expect("teleset indices fit u32"),
                storage: u32::try_from(next * self.ports_per_node + incoming.index())
                    .expect("storage indices fit u32"),
                service,
                ring_entry,
            });
            prev_class = class;
            at = next;
        }
        debug_assert_eq!(at, d, "routes must end at the destination");
        let span_cells = (hops.len() as u64)
            .checked_mul(self.cfg.hop_cells)
            .expect("route span in cells overflows u64");
        RoutePath {
            hops,
            dst_site: u32::try_from(d).expect("node indices fit u32"),
            purify_op_time: self.cfg.times.purify_round(span_cells),
            data_teleport_time: self.cfg.times.teleport(span_cells),
        }
    }

    // --- token machinery ----------------------------------------------

    fn alloc_token(&mut self, comm: u32) -> u32 {
        let token = Token {
            comm,
            pos: 0,
            alive: true,
        };
        if let Some(idx) = self.free_tokens.pop() {
            self.tokens[idx as usize] = token;
            idx
        } else {
            self.tokens.push(token);
            u32::try_from(self.tokens.len() - 1).expect("token ids fit u32")
        }
    }

    fn free_token(&mut self, idx: u32) {
        self.tokens[idx as usize].alive = false;
        self.free_tokens.push(idx);
    }

    /// Attempts to fire hop `pos` for `comm`: returns `false` (after
    /// queueing the waiter) if any resource is missing.
    ///
    /// `waiter` is the id to enqueue on the blocking resource: the token
    /// id for in-flight pairs, or `SOURCE_FLAG | comm` for injection.
    fn try_fire_hop(&mut self, comm_id: u32, pos: usize, waiter: u64) -> bool {
        let hop = self.comms[comm_id as usize].path.hops[pos];
        // Bubble flow control: ring-entry hops must leave one free
        // downstream cell so cyclic fabrics cannot deadlock.
        let reserve = u32::from(self.bubble && hop.ring_entry);
        let (edge, teleset, storage) = (
            hop.link as usize,
            hop.teleset as usize,
            hop.storage as usize,
        );
        let now = self.queue.now();
        // Check all three, commit only if all are available.
        if self.storage.free_cells(storage) <= reserve {
            self.storage_stalls += 1;
            if P::ACTIVE {
                self.probe
                    .on_stall(now.as_nanos(), StallCause::Storage, hop.storage, comm_id);
            }
            self.waiters.push_back(self.wait_storage0 + storage, waiter);
            return false;
        }
        self.wires.refresh(edge, now);
        if self.wires.stock[edge] == 0 {
            self.wire_stalls += 1;
            if P::ACTIVE {
                self.probe
                    .on_stall(now.as_nanos(), StallCause::Wire, hop.link, comm_id);
            }
            self.waiters.push_back(self.wait_wire0 + edge, waiter);
            if !self.wires.wake_pending[edge] {
                self.wires.wake_pending[edge] = true;
                // Stock is zero after a refresh, so the next pair lands
                // strictly in the future at `next_ready`.
                self.queue.schedule_at(
                    self.wires.next_ready[edge],
                    Event::WireWake { edge: hop.link },
                );
            }
            return false;
        }
        if !self.telesets.available(teleset) {
            self.teleporter_stalls += 1;
            if P::ACTIVE {
                self.probe
                    .on_stall(now.as_nanos(), StallCause::Teleporter, hop.teleset, comm_id);
            }
            self.waiters.push_back(teleset, waiter);
            return false;
        }
        // Commit. Penalty-bearing topologies (fault wrappers with hot
        // spots, modular fabrics with a slow inter-module tier) may
        // charge extra service on this link; fabrics without a penalty
        // model add zero (the trait default), so the lookup is skipped
        // entirely for them.
        let service = if self.penalties {
            hop.service + Duration::from_nanos(self.topo.hop_penalty_ns(edge, now.as_nanos()))
        } else {
            hop.service
        };
        self.wires.take_refreshed(edge, now);
        self.telesets.acquire(teleset, service);
        self.storage.reserve(storage);
        self.teleport_ops += 1;
        if P::ACTIVE {
            let t = now.as_nanos();
            self.probe.on_wire_take(t, hop.link);
            self.probe.on_hop_fire(
                t,
                comm_id,
                u32::try_from(pos).expect("route length fits u32"),
                hop.link,
                hop.teleset,
                service.as_nanos(),
            );
            self.probe
                .on_storage(t, hop.storage, self.storage.used[storage]);
        }
        let token_idx = if waiter & SOURCE_FLAG != 0 {
            self.alloc_token(comm_id)
        } else {
            waiter as u32
        };
        // Position it fired FROM; lands at pos+1.
        self.tokens[token_idx as usize].pos = u16::try_from(pos).expect("route length fits u16");
        self.queue
            .schedule_after(service, Event::TeleportDone { token: token_idx });
        true
    }

    /// Re-activates a waiter after a resource freed up.
    fn wake(&mut self, waiter: u64) {
        if waiter & SOURCE_FLAG != 0 {
            let comm = (waiter & !SOURCE_FLAG) as u32;
            self.comms[comm as usize].source_waiting = false;
            self.source_try(comm);
        } else {
            let token = waiter as u32;
            if !self.tokens[token as usize].alive {
                return;
            }
            let pos = usize::from(self.tokens[token as usize].pos);
            let comm = self.tokens[token as usize].comm;
            let _ = self.try_fire_hop(comm, pos, u64::from(token));
        }
    }

    fn drain_teleset_waiters(&mut self, teleset: usize) {
        while self.telesets.available(teleset) {
            match self.waiters.pop_front(teleset) {
                Some(w) => self.wake(w),
                None => break,
            }
        }
    }

    fn drain_storage_waiters(&mut self, storage: usize) {
        // Budgeted drain: a bubble-reserved waiter can re-enqueue itself
        // on this same storage while cells remain free, so give each
        // queued waiter at most one chance per drain.
        let id = self.wait_storage0 + storage;
        let mut budget = self.waiters.len(id);
        while budget > 0 && self.storage.free_cells(storage) > 0 {
            match self.waiters.pop_front(id) {
                Some(w) => self.wake(w),
                None => break,
            }
            budget -= 1;
        }
    }

    /// The comm's head-of-line injection attempt.
    fn source_try(&mut self, comm_id: u32) {
        let c = &mut self.comms[comm_id as usize];
        if c.raw_to_spawn == 0 || c.source_waiting {
            return;
        }
        let waiter = SOURCE_FLAG | u64::from(comm_id);
        // Mark waiting before the attempt; cleared on success.
        self.comms[comm_id as usize].source_waiting = true;
        if self.try_fire_hop(comm_id, 0, waiter) {
            let c = &mut self.comms[comm_id as usize];
            c.source_waiting = false;
            c.raw_to_spawn -= 1;
            if c.raw_to_spawn > 0 {
                self.queue.schedule_now(Event::SourceTry { comm: comm_id });
            }
        }
    }

    // --- endpoint purification ----------------------------------------

    fn feed_purifier(&mut self, comm_id: u32) {
        let depth = self.cfg.purify_depth;
        let (site_idx, ops, produces, dur) = {
            let c = &mut self.comms[comm_id as usize];
            c.arrivals += 1;
            let period = 1u64 << depth;
            let k = (c.arrivals - 1) % period;
            let ops = k.trailing_ones().min(depth);
            let produces = c.arrivals % period == 0;
            (
                c.path.dst_site as usize,
                ops,
                produces,
                c.path.purify_op_time,
            )
        };
        if ops == 0 {
            // Parked at L0; no purifier time consumed.
            return;
        }
        let job_dur = dur * u64::from(ops);
        if self.sites.busy[site_idx] < self.sites.units {
            self.sites.busy[site_idx] += 1;
            self.sites.busy_ns[site_idx] += job_dur.as_nanos();
            if P::ACTIVE {
                self.probe.on_purify_start(
                    self.queue.now().as_nanos(),
                    site_idx as u32,
                    comm_id,
                    ops,
                    job_dur.as_nanos(),
                );
            }
            self.queue.schedule_after(
                job_dur,
                Event::PurifyDone {
                    site: site_idx as u32,
                    comm: comm_id,
                    ops,
                    produces,
                },
            );
        } else {
            self.waiters.push_back(
                self.wait_site0 + site_idx,
                pack_purify_job(comm_id, ops, produces),
            );
        }
    }

    fn purify_done(&mut self, site_idx: u32, comm_id: u32, ops: u32, produces: bool) {
        self.purify_ops += u64::from(ops);
        if produces {
            self.purified_outputs += 1;
            let c = &mut self.comms[comm_id as usize];
            c.outputs += 1;
            if c.outputs == c.needed_outputs && !c.done {
                c.done = true;
                let dt = c.path.data_teleport_time;
                self.queue
                    .schedule_after(dt, Event::DataTeleportDone { comm: comm_id });
            }
        }
        // Free the unit; start the next queued job.
        let s = site_idx as usize;
        self.sites.busy[s] -= 1;
        if let Some(job) = self.waiters.pop_front(self.wait_site0 + s) {
            let (c, ops, produces) = unpack_purify_job(job);
            let dur = self.comms[c as usize].path.purify_op_time * u64::from(ops);
            self.sites.busy[s] += 1;
            self.sites.busy_ns[s] += dur.as_nanos();
            if P::ACTIVE {
                self.probe.on_purify_start(
                    self.queue.now().as_nanos(),
                    site_idx,
                    c,
                    ops,
                    dur.as_nanos(),
                );
            }
            self.queue.schedule_after(
                dur,
                Event::PurifyDone {
                    site: site_idx,
                    comm: c,
                    ops,
                    produces,
                },
            );
        }
    }

    // --- event dispatch -------------------------------------------------

    fn handle(&mut self, ev: Event, driver: &mut dyn Driver) {
        if P::ACTIVE {
            let kind = match ev {
                Event::SourceTry { .. } => EventKind::SourceTry,
                Event::TeleportDone { .. } => EventKind::TeleportDone,
                Event::WireWake { .. } => EventKind::WireWake,
                Event::PurifyDone { .. } => EventKind::PurifyDone,
                Event::DataTeleportDone { .. } => EventKind::DataTeleportDone,
                Event::Dropped { .. } => EventKind::Dropped,
                Event::Submit { .. } => EventKind::Submit,
                Event::Notify { .. } => EventKind::Notify,
            };
            self.probe.on_event(self.queue.now().as_nanos(), kind);
        }
        match ev {
            Event::SourceTry { comm } => {
                // Clear the waiting latch set by a previous failed attempt
                // only if it was set by this path; source_try handles it.
                if !self.comms[comm as usize].source_waiting {
                    self.source_try(comm);
                }
            }
            Event::TeleportDone { token } => self.teleport_done(token),
            Event::WireWake { edge } => self.wire_wake(edge as usize),
            Event::PurifyDone {
                site,
                comm,
                ops,
                produces,
            } => {
                self.purify_done(site, comm, ops, produces);
            }
            Event::DataTeleportDone { comm } => {
                let done = {
                    let c = &mut self.comms[comm as usize];
                    c.done = true;
                    CommDone {
                        id: CommId(comm),
                        tag: c.tag,
                        src: c.src,
                        dst: c.dst,
                        issued_at: c.issued_at,
                        completed_at: self.queue.now(),
                        outcome: CommOutcome::Delivered,
                    }
                };
                // The channel closes: release its link load so adaptive
                // routing sees fresh contention.
                let path = Rc::clone(&self.comms[comm as usize].path);
                for hop in &path.hops {
                    self.channel_load[hop.link as usize] -= 1;
                }
                self.live_comms -= 1;
                self.comms_completed += 1;
                let latency = done.completed_at.since(done.issued_at);
                self.comm_latency_us.record_duration(latency);
                self.latency_samples.push(latency.as_us_f64());
                if P::ACTIVE {
                    self.probe.on_comm_done(
                        done.completed_at.as_nanos(),
                        comm,
                        done.issued_at.as_nanos(),
                    );
                }
                driver.on_complete(done, &mut SimApi { world: self });
            }
            Event::Dropped { comm } => {
                let done = {
                    let c = &mut self.comms[comm as usize];
                    c.done = true;
                    CommDone {
                        id: CommId(comm),
                        tag: c.tag,
                        src: c.src,
                        dst: c.dst,
                        issued_at: c.issued_at,
                        completed_at: self.queue.now(),
                        outcome: CommOutcome::Unreachable,
                    }
                };
                // A drop finishes the communication (live-comm accounting
                // and driver chaining both proceed) but records no
                // latency sample: latency statistics cover deliveries.
                self.live_comms -= 1;
                self.comms_completed += 1;
                self.comms_dropped += 1;
                if P::ACTIVE {
                    self.probe.on_comm_drop(done.completed_at.as_nanos(), comm);
                }
                driver.on_complete(done, &mut SimApi { world: self });
            }
            Event::Submit { src, dst, tag } => {
                let _ = World::submit(self, src, dst, tag);
            }
            Event::Notify { tag } => {
                driver.on_notify(tag, &mut SimApi { world: self });
            }
        }
    }

    fn teleport_done(&mut self, token_idx: u32) {
        let (comm_id, fired_pos) = {
            let t = &self.tokens[token_idx as usize];
            (t.comm, usize::from(t.pos))
        };
        let landed = fired_pos + 1;
        let (teleset, held_storage, hops) = {
            let path = &self.comms[comm_id as usize].path;
            (
                path.hops[fired_pos].teleset as usize,
                // Storage this token held at the node it fired from: the
                // landing bank of the previous hop (injection hops fire
                // from the source and hold none).
                (fired_pos > 0).then(|| path.hops[fired_pos - 1].storage as usize),
                path.hops.len(),
            )
        };
        // Free the teleporter that served this hop.
        self.telesets.release(teleset);
        if P::ACTIVE {
            self.probe.on_teleset_release(
                self.queue.now().as_nanos(),
                u32::try_from(teleset).expect("teleset indices fit u32"),
            );
        }
        if let Some(sidx) = held_storage {
            self.storage.free(sidx);
            if P::ACTIVE {
                self.probe.on_storage(
                    self.queue.now().as_nanos(),
                    u32::try_from(sidx).expect("storage indices fit u32"),
                    self.storage.used[sidx],
                );
            }
            self.drain_storage_waiters(sidx);
        }
        self.drain_teleset_waiters(teleset);

        self.tokens[token_idx as usize].pos = u16::try_from(landed).expect("route length fits u16");
        if landed == hops {
            // Arrived: hand off to the P node, freeing network storage
            // (the landing bank of the final hop).
            let sidx = self.comms[comm_id as usize].path.hops[landed - 1].storage as usize;
            self.storage.free(sidx);
            if P::ACTIVE {
                self.probe.on_storage(
                    self.queue.now().as_nanos(),
                    u32::try_from(sidx).expect("storage indices fit u32"),
                    self.storage.used[sidx],
                );
            }
            self.free_token(token_idx);
            self.drain_storage_waiters(sidx);
            self.feed_purifier(comm_id);
        } else {
            let _ = self.try_fire_hop(comm_id, landed, u64::from(token_idx));
        }
    }

    fn wire_wake(&mut self, edge: usize) {
        let now = self.queue.now();
        let id = self.wait_wire0 + edge;
        self.wires.wake_pending[edge] = false;
        loop {
            self.wires.refresh(edge, now);
            if self.wires.stock[edge] == 0 {
                break;
            }
            match self.waiters.pop_front(id) {
                Some(w) => self.wake(w),
                None => break,
            }
        }
        // If tokens still wait and the wire is dry, re-arm the wake.
        self.wires.refresh(edge, now);
        if !self.waiters.is_empty(id)
            && self.wires.stock[edge] == 0
            && !self.wires.wake_pending[edge]
        {
            self.wires.wake_pending[edge] = true;
            self.queue.schedule_at(
                self.wires.next_ready[edge],
                Event::WireWake {
                    edge: u32::try_from(edge).expect("link indices fit u32"),
                },
            );
        }
    }

    fn report(&mut self) -> NetReport {
        let makespan = self.queue.now().as_duration();
        let pairs_generated: u64 = self.wires.produced.iter().sum();
        let pairs_consumed: u64 = self.wires.consumed.iter().sum();
        let horizon_ns = u128::from(makespan.as_nanos());
        let tele_util = if makespan == Duration::ZERO {
            0.0
        } else {
            // Same per-pool arithmetic (and summation order) as
            // `ServerPool::utilization`, over the flat arrays. Idle
            // pools contribute exactly 0.0, so they are skipped.
            let mut total = 0.0;
            for i in 0..self.telesets.capacity.len() {
                if self.telesets.busy_ns[i] != 0 {
                    total += self.telesets.busy_ns[i] as f64
                        / (horizon_ns * u128::from(self.telesets.capacity[i])) as f64;
                }
            }
            total / self.telesets.capacity.len() as f64
        };
        let puri_util = if makespan == Duration::ZERO {
            0.0
        } else {
            let mut total = 0.0;
            for &busy_ns in &self.sites.busy_ns {
                if busy_ns != 0 {
                    total += busy_ns as f64 / (horizon_ns * u128::from(self.sites.units)) as f64;
                }
            }
            total / self.sites.busy_ns.len() as f64
        };
        NetReport {
            makespan,
            comms_completed: self.comms_completed,
            teleport_ops: self.teleport_ops,
            pairs_generated,
            pairs_consumed,
            purify_ops: self.purify_ops,
            purified_outputs: self.purified_outputs,
            teleporter_stalls: self.teleporter_stalls,
            wire_stalls: self.wire_stalls,
            storage_stalls: self.storage_stalls,
            comm_latency_us: self.comm_latency_us,
            latency_percentiles: Percentiles::from_samples(&self.latency_samples),
            teleporter_utilization: tele_util,
            purifier_utilization: puri_util,
            events: self.queue.events_processed(),
            fault: self.fault_aware.then(|| {
                let delivered = self.comms_completed - self.comms_dropped;
                FaultStats {
                    delivered,
                    dropped: self.comms_dropped,
                    rerouted: self.comms_rerouted,
                    mean_route_inflation: if delivered == 0 {
                        0.0
                    } else {
                        self.route_inflation_sum / delivered as f64
                    },
                }
            }),
            timeline: if P::ACTIVE {
                self.probe.finish(makespan.as_nanos())
            } else {
                None
            },
        }
    }
}

/// The communication simulator, generic over the interconnect fabric.
///
/// The default type parameter is the config-driven [`Fabric`] enum, so
/// `NetworkSim::new(cfg)` keeps working untyped; custom [`Topology`]
/// implementations plug in through [`NetworkSim::with_topology`] (and
/// custom routing policies through [`NetworkSim::with_router`]) with
/// static dispatch on the simulation hot path.
///
/// See the crate docs for an overview; construct with a validated
/// [`NetConfig`] and run a [`Driver`] to completion. Instrumentation is
/// the second type parameter: the default [`NoProbe`] compiles every
/// hook away; attach a recording probe with [`NetworkSim::with_probe`]
/// (or the `_probe` variants of the other constructors) and recover it
/// through [`NetworkSim::run_traced`].
pub struct NetworkSim<T: Topology = Fabric, P: Probe = NoProbe> {
    world: World<T, P>,
}

impl NetworkSim<Fabric> {
    /// Builds a simulator for the given configuration, with the fabric
    /// and routing policy the config selects.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`NetConfig::validate`].
    pub fn new(cfg: NetConfig) -> Self {
        NetworkSim::with_probe(cfg, NoProbe)
    }
}

impl<P: Probe> NetworkSim<Fabric, P> {
    /// Builds a simulator for the given configuration with an attached
    /// probe (e.g. `qic_probe::RecordingProbe`).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`NetConfig::validate`].
    pub fn with_probe(cfg: NetConfig, probe: P) -> Self {
        // `World::new` validates the full config; only an unbuildable grid
        // needs catching here, and then `validate` supplies the real error.
        let fabric = match cfg.topology.build(cfg.mesh_width, cfg.mesh_height) {
            Ok(fabric) => fabric,
            Err(_) => {
                cfg.validate().expect("configuration must validate");
                unreachable!("validate rejects unbuildable fabrics")
            }
        };
        NetworkSim::with_topology_probe(cfg, fabric, probe)
    }
}

impl<T: Topology> NetworkSim<T> {
    /// Builds a simulator over a caller-supplied topology, using the
    /// config's routing policy. The config's grid fields are ignored in
    /// favour of the topology's own shape.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`NetConfig::validate`].
    pub fn with_topology(cfg: NetConfig, topo: T) -> Self {
        NetworkSim::with_topology_probe(cfg, topo, NoProbe)
    }

    /// Builds a simulator over a caller-supplied topology and routing
    /// policy — the fully pluggable constructor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`NetConfig::validate`].
    pub fn with_router(cfg: NetConfig, topo: T, router: Box<dyn Router>) -> Self {
        NetworkSim::with_router_probe(cfg, topo, router, NoProbe)
    }
}

impl<T: Topology, P: Probe> NetworkSim<T, P> {
    /// [`NetworkSim::with_topology`] with an attached probe.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`NetConfig::validate`].
    pub fn with_topology_probe(cfg: NetConfig, topo: T, probe: P) -> Self {
        let router = cfg.routing.router();
        NetworkSim::with_router_probe(cfg, topo, router, probe)
    }

    /// [`NetworkSim::with_router`] with an attached probe.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`NetConfig::validate`].
    pub fn with_router_probe(cfg: NetConfig, topo: T, router: Box<dyn Router>, probe: P) -> Self {
        NetworkSim {
            world: World::new(cfg, topo, router, probe),
        }
    }

    /// The simulator's topology.
    pub fn topology(&self) -> &T {
        &self.world.topo
    }

    /// Runs the driver's workload to completion and reports.
    ///
    /// # Panics
    ///
    /// Panics if the event budget (`max_events`) is exhausted — a sign of
    /// a runaway workload or a configuration far beyond the intended
    /// scale.
    pub fn run(self, driver: &mut dyn Driver) -> NetReport {
        self.run_traced(driver).0
    }

    /// Runs the driver's workload to completion, returning the report
    /// and the probe (so a recording probe's event stream can be
    /// exported after the run).
    ///
    /// # Panics
    ///
    /// Panics if the event budget (`max_events`) is exhausted.
    pub fn run_traced(mut self, driver: &mut dyn Driver) -> (NetReport, P) {
        driver.start(&mut SimApi {
            world: &mut self.world,
        });
        let max_events = self.world.cfg.max_events;
        // Batched dispatch: drain each instant's events in one queue
        // operation. `handled` counts per-event so the budget panic
        // fires at exactly the same event a pop-one-at-a-time loop
        // would have reached.
        let mut handled: u64 = 0;
        let mut batch: Vec<Event> = Vec::with_capacity(16);
        while self.world.queue.pop_batch(&mut batch).is_some() {
            if P::ACTIVE {
                self.world.probe.on_queue_depth(
                    self.world.queue.now().as_nanos(),
                    batch.len() + self.world.queue.len(),
                );
            }
            for &ev in &batch {
                self.world.handle(ev, driver);
                handled += 1;
                if handled > max_events {
                    panic!(
                        "event budget exceeded ({max_events}); {} comms incomplete",
                        self.world.live_comms
                    );
                }
            }
        }
        assert_eq!(
            self.world.live_comms, 0,
            "simulation drained with live comms"
        );
        let report = self.world.report();
        (report, self.world.probe)
    }
}

impl<T: Topology, P: Probe> std::fmt::Debug for NetworkSim<T, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkSim")
            .field("topology", &self.world.topo.name())
            .field("grid", &(self.world.topo.width(), self.world.topo.height()))
            .field("routing", &self.world.router.name())
            .field("queue", &self.world.queue)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutingPolicy;
    use crate::topology::{Mesh, TopologyKind};

    fn cfg() -> NetConfig {
        NetConfig::small_test()
    }

    #[test]
    fn single_comm_completes() {
        let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 3));
        let report = NetworkSim::new(cfg()).run(&mut driver);
        assert_eq!(report.comms_completed, 1);
        let done = driver.done.expect("completion recorded");
        assert_eq!(done.src, Coord::new(0, 0));
        assert!(done.completed_at > done.issued_at);
        // raw pairs = outputs × 2^depth = 2 × 2 = 4; hops = 6.
        assert_eq!(report.teleport_ops, 4 * 6);
        assert_eq!(report.pairs_consumed, 4 * 6);
        assert_eq!(report.purified_outputs, 2);
        assert!(report.pairs_generated >= report.pairs_consumed);
    }

    #[test]
    fn latency_exceeds_physical_floor() {
        let c = cfg();
        let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 0));
        let report = NetworkSim::new(c.clone()).run(&mut driver);
        // At minimum: 3 sequential hops for the last pair + a purify op +
        // the data teleport.
        let floor = c.times.teleport(c.hop_cells) * 3;
        assert!(report.makespan > floor);
        assert!(report.mean_latency().unwrap() > floor);
    }

    #[test]
    fn zero_hop_comm() {
        let mut driver = OneShotDriver::new(Coord::new(1, 1), Coord::new(1, 1));
        let report = NetworkSim::new(cfg()).run(&mut driver);
        assert_eq!(report.comms_completed, 1);
        assert_eq!(report.teleport_ops, 0);
        assert_eq!(report.purify_ops, 0);
    }

    #[test]
    fn latency_percentiles_populated_and_ordered() {
        let mut driver = BatchDriver::new(vec![
            (Coord::new(0, 0), Coord::new(3, 3)),
            (Coord::new(3, 0), Coord::new(0, 3)),
            (Coord::new(1, 1), Coord::new(2, 2)),
            (Coord::new(0, 2), Coord::new(3, 1)),
        ]);
        let report = NetworkSim::new(cfg()).run(&mut driver);
        let p = report.latency_percentiles.expect("comms completed");
        assert!(p.p50 <= p.p95 && p.p95 <= p.p99, "{p:?}");
        // Percentiles are actual samples, so they sit inside the tally's
        // observed range.
        assert!(p.p50 >= report.comm_latency_us.min().unwrap());
        assert!(p.p99 <= report.comm_latency_us.max().unwrap());
        assert!(report.latency_p95().unwrap() >= report.latency_p50().unwrap());
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut driver = BatchDriver::new(vec![
                (Coord::new(0, 0), Coord::new(3, 2)),
                (Coord::new(3, 0), Coord::new(0, 3)),
                (Coord::new(1, 1), Coord::new(2, 2)),
            ]);
            NetworkSim::new(cfg()).run(&mut driver)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn contention_slows_sharing_channels() {
        // Two channels crossing the same column contend for teleporters;
        // two disjoint rows do not.
        let mut c = cfg();
        c.teleporters_per_node = 2;
        c.generators_per_edge = 2;
        let mut crossing = BatchDriver::new(vec![
            (Coord::new(0, 0), Coord::new(3, 0)),
            (Coord::new(0, 0), Coord::new(3, 0)),
        ]);
        let shared = NetworkSim::new(c.clone()).run(&mut crossing);
        let mut disjoint = BatchDriver::new(vec![
            (Coord::new(0, 0), Coord::new(3, 0)),
            (Coord::new(0, 2), Coord::new(3, 2)),
        ]);
        let apart = NetworkSim::new(c).run(&mut disjoint);
        assert!(
            shared.makespan > apart.makespan,
            "shared {} vs disjoint {}",
            shared.makespan,
            apart.makespan
        );
        assert!(shared.teleporter_stalls + shared.wire_stalls > 0);
    }

    #[test]
    fn more_generators_help_when_wire_limited() {
        let mut starved = cfg();
        starved.generators_per_edge = 1;
        starved.teleporters_per_node = 8;
        let mut rich = starved.clone();
        rich.generators_per_edge = 8;
        let route = (Coord::new(0, 0), Coord::new(3, 3));
        let slow = NetworkSim::new(starved).run(&mut OneShotDriver::new(route.0, route.1));
        let fast = NetworkSim::new(rich).run(&mut OneShotDriver::new(route.0, route.1));
        assert!(slow.makespan > fast.makespan);
        assert!(slow.wire_stalls > 0, "the starved run must hit empty wires");
    }

    #[test]
    fn driver_chaining_submits_follow_ups() {
        struct PingPong {
            remaining: u32,
        }
        impl Driver for PingPong {
            fn start(&mut self, api: &mut SimApi<'_>) {
                api.submit_now(Coord::new(0, 0), Coord::new(2, 2), 1);
            }
            fn on_complete(&mut self, done: CommDone, api: &mut SimApi<'_>) {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    // Return trip after a 20µs "gate".
                    api.submit_after(Duration::from_micros(20), done.dst, done.src, done.tag + 1);
                }
            }
        }
        let mut driver = PingPong { remaining: 3 };
        let report = NetworkSim::new(cfg()).run(&mut driver);
        assert_eq!(report.comms_completed, 4);
        assert_eq!(driver.remaining, 0);
    }

    #[test]
    fn no_deadlock_under_tight_storage() {
        // Minimal resources everywhere; four crossing channels.
        let mut c = cfg();
        c.teleporters_per_node = 2;
        c.generators_per_edge = 1;
        c.purifiers_per_site = 1;
        let mut driver = BatchDriver::new(vec![
            (Coord::new(0, 0), Coord::new(3, 3)),
            (Coord::new(3, 3), Coord::new(0, 0)),
            (Coord::new(0, 3), Coord::new(3, 0)),
            (Coord::new(3, 0), Coord::new(0, 3)),
        ]);
        let report = NetworkSim::new(c).run(&mut driver);
        assert_eq!(
            report.comms_completed, 4,
            "dimension-order + per-link storage is deadlock-free"
        );
        assert!(report.storage_stalls > 0 || report.teleporter_stalls > 0);
    }

    #[test]
    fn purifier_counts_are_exact() {
        // Depth 2, 3 outputs: raw = 12; per output the cascade does
        // 2^2 − 1 = 3 ops → 9 ops total.
        let mut c = cfg();
        c.purify_depth = 2;
        c.outputs_per_comm = 3;
        let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(2, 0));
        let report = NetworkSim::new(c).run(&mut driver);
        assert_eq!(report.purified_outputs, 3);
        assert_eq!(report.purify_ops, 9);
        assert_eq!(report.teleport_ops, 12 * 2);
    }

    #[test]
    fn utilizations_are_probabilities() {
        let mut driver = BatchDriver::new(vec![
            (Coord::new(0, 0), Coord::new(3, 3)),
            (Coord::new(1, 0), Coord::new(2, 3)),
        ]);
        let report = NetworkSim::new(cfg()).run(&mut driver);
        assert!((0.0..=1.0).contains(&report.teleporter_utilization));
        assert!((0.0..=1.0).contains(&report.purifier_utilization));
        assert!(report.teleporter_utilization > 0.0);
        assert!(report.purifier_utilization > 0.0);
        assert!(report.events > 0);
    }

    #[test]
    #[should_panic(expected = "event budget exceeded")]
    fn event_budget_guard() {
        let mut c = cfg();
        c.max_events = 10;
        let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 3));
        let _ = NetworkSim::new(c).run(&mut driver);
    }

    #[test]
    #[should_panic(expected = "route span in cells overflows u64")]
    fn absurd_hop_cells_fail_loudly_instead_of_wrapping() {
        // Cast audit regression: `route hops × hop_cells` is the one
        // multiplication user input can push past u64, and it must panic
        // rather than wrap into a silently wrong latency model. Zero the
        // per-cell classical time so the per-hop service computation
        // stays in range and the span product is the first overflow.
        let mut c = cfg();
        c.hop_cells = u64::MAX / 2;
        c.times = c.times.with_classical_per_cell(Duration::ZERO);
        let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 3));
        let _ = NetworkSim::new(c).run(&mut driver);
    }

    #[test]
    fn repeat_submissions_hit_the_route_cache_and_match_fresh_runs() {
        // Two identical batched comms (cache hit on the second) must
        // report exactly twice the single-comm op counts.
        let mut batch = BatchDriver::new(vec![
            (Coord::new(0, 0), Coord::new(3, 3)),
            (Coord::new(0, 0), Coord::new(3, 3)),
        ]);
        let report = NetworkSim::new(cfg()).run(&mut batch);
        let mut single = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 3));
        let one = NetworkSim::new(cfg()).run(&mut single);
        assert_eq!(report.comms_completed, 2);
        assert_eq!(report.teleport_ops, 2 * one.teleport_ops);
        assert_eq!(report.purified_outputs, 2 * one.purified_outputs);
    }

    // --- multi-topology behaviour -------------------------------------

    #[test]
    fn explicit_mesh_topology_matches_config_driven_runs() {
        let run_config = || {
            let mut d = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 2));
            NetworkSim::new(cfg()).run(&mut d)
        };
        let run_explicit = || {
            let mut d = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 2));
            NetworkSim::with_topology(cfg(), Mesh::new(4, 4)).run(&mut d)
        };
        assert_eq!(run_config(), run_explicit());
    }

    #[test]
    fn torus_wraps_shorten_corner_routes() {
        let c = cfg().with_topology(TopologyKind::Torus);
        let raw = c.raw_pairs_per_comm();
        let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 3));
        let report = NetworkSim::new(c).run(&mut driver);
        assert_eq!(report.comms_completed, 1);
        // Corner to corner is 2 hops over the wraps (6 on the mesh).
        assert_eq!(report.teleport_ops, raw * 2);

        let mesh =
            NetworkSim::new(cfg()).run(&mut OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 3)));
        assert!(
            report.makespan < mesh.makespan,
            "shorter route, faster comm"
        );
    }

    #[test]
    fn hypercube_routes_by_hamming_distance() {
        let c = cfg().with_topology(TopologyKind::Hypercube);
        let raw = c.raw_pairs_per_comm();
        // (0,0) is node 0, (3,3) is node 15: Hamming distance 4.
        let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 3));
        let report = NetworkSim::new(c).run(&mut driver);
        assert_eq!(report.comms_completed, 1);
        assert_eq!(report.teleport_ops, raw * 4);
    }

    #[test]
    fn every_fabric_and_policy_completes_crossing_traffic() {
        for kind in TopologyKind::ALL {
            for routing in RoutingPolicy::ALL {
                let c = cfg().with_topology(kind).with_routing(routing);
                let mut driver = BatchDriver::new(vec![
                    (Coord::new(0, 0), Coord::new(3, 3)),
                    (Coord::new(3, 3), Coord::new(0, 0)),
                    (Coord::new(0, 3), Coord::new(3, 0)),
                    (Coord::new(3, 0), Coord::new(0, 3)),
                    (Coord::new(1, 2), Coord::new(2, 1)),
                ]);
                let report = NetworkSim::new(c).run(&mut driver);
                assert_eq!(report.comms_completed, 5, "{kind}/{routing}");
            }
        }
    }

    #[test]
    fn cyclic_fabrics_survive_tight_storage() {
        // The bubble-flow-control stress: minimal legal resources on a
        // wrapped fabric with adaptive routing and crossing traffic.
        let mut c = cfg()
            .with_topology(TopologyKind::Torus)
            .with_routing(RoutingPolicy::MinimalAdaptive);
        c.teleporters_per_node = 2;
        c.generators_per_edge = 1;
        c.purifiers_per_site = 1;
        let mut driver = BatchDriver::new(vec![
            (Coord::new(0, 0), Coord::new(2, 2)),
            (Coord::new(2, 2), Coord::new(0, 0)),
            (Coord::new(0, 2), Coord::new(2, 0)),
            (Coord::new(2, 0), Coord::new(0, 2)),
            (Coord::new(3, 1), Coord::new(1, 3)),
            (Coord::new(1, 3), Coord::new(3, 1)),
        ]);
        let report = NetworkSim::new(c).run(&mut driver);
        assert_eq!(report.comms_completed, 6);
    }

    #[test]
    fn adaptive_routing_is_deterministic() {
        let run = || {
            let mut driver = BatchDriver::new(vec![
                (Coord::new(0, 0), Coord::new(3, 3)),
                (Coord::new(0, 0), Coord::new(3, 3)),
                (Coord::new(3, 0), Coord::new(0, 3)),
            ]);
            let c = cfg().with_routing(RoutingPolicy::MinimalAdaptive);
            NetworkSim::new(c).run(&mut driver)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn adaptive_spreads_identical_channels_across_paths() {
        // Two same-endpoint channels on a mesh: dimension-order stacks
        // them on one path; minimal-adaptive opens the second on a
        // disjoint minimal path, cutting wire contention.
        let mut c = cfg();
        c.teleporters_per_node = 2;
        c.generators_per_edge = 1;
        let batch = vec![
            (Coord::new(0, 0), Coord::new(3, 3)),
            (Coord::new(0, 0), Coord::new(3, 3)),
        ];
        let dor = NetworkSim::new(c.clone()).run(&mut BatchDriver::new(batch.clone()));
        let ada = NetworkSim::new(c.with_routing(RoutingPolicy::MinimalAdaptive))
            .run(&mut BatchDriver::new(batch));
        assert!(
            ada.wire_stalls < dor.wire_stalls,
            "adaptive {} vs dor {} wire stalls",
            ada.wire_stalls,
            dor.wire_stalls
        );
        // (Makespans are close but not strictly ordered: adaptive also
        // pays the bubble-flow-control injection reserve.)
    }

    #[test]
    #[should_panic(expected = "port classes")]
    fn with_topology_rechecks_teleporter_coverage() {
        // The config validates as a mesh (2 classes), but the supplied
        // hypercube has 4 — `with_topology` must re-check against the
        // fabric actually used, not the config's.
        let mut c = cfg();
        c.teleporters_per_node = 2;
        let _ = NetworkSim::with_topology(c, crate::topology::Hypercube::new(4));
    }

    #[test]
    fn debug_names_the_fabric() {
        let sim = NetworkSim::new(cfg().with_topology(TopologyKind::Hypercube));
        let dbg = format!("{sim:?}");
        assert!(dbg.contains("hypercube"), "{dbg}");
        assert!(dbg.contains("dor"), "{dbg}");
    }
}
