//! The event-driven communication simulator — **Section 5**.
//!
//! A logical communication opens a *channel*: a minimal route of
//! teleport hops from source to destination, chosen by the configured
//! [`Router`] over the configured [`Topology`] (the paper's setup is
//! dimension-order routing on a mesh). The channel streams
//! `outputs × 2^depth` chained EPR pairs; every hop consumes one link pair
//! from the link's G node, one teleporter slot in the router's
//! per-dimension-set pool, and one storage cell at the downstream router
//! (non-multiplexed per incoming link). Arriving pairs cascade through
//! the endpoint's queue purifiers; when enough purified pairs
//! accumulate, the logical qubit is teleported and the driver is
//! notified.
//!
//! All contention is explicit: teleporter sets are time-multiplexed FIFO,
//! wires produce at finite rate into bounded buffers, and storage exerts
//! backpressure upstream. On fabrics whose channel-dependency graph has
//! cycles (torus wraps, adaptive routing) the simulator additionally
//! applies **bubble flow control**: a hop that enters a new dimension
//! ring — injection or a class change — must leave one downstream
//! storage cell free, so a ring can never fill completely and deadlock.
//! Determinism: FIFO tie-breaking plus a seeded RNG for the classical
//! correction bits.

use std::collections::VecDeque;

use qic_des::queue::EventQueue;
use qic_des::rng::SimRng;
use qic_des::stats::{Percentiles, Tally};
use qic_des::time::SimTime;
use qic_physics::time::Duration;

use crate::config::NetConfig;
use crate::message::PauliFrame;
use crate::report::{FaultStats, NetReport};
use crate::resources::{LinkWire, ServerPool, Storage};
use crate::routing::Router;
use crate::topology::{Coord, Fabric, Port, Topology};

/// Identifier of a logical communication within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommId(pub u32);

/// How a communication finished.
///
/// On healthy fabrics every communication is [`CommOutcome::Delivered`].
/// Over a fault-aware topology (`qic-fault`'s `DegradedFabric`) a
/// communication whose endpoints are dead or disconnected finishes
/// immediately as [`CommOutcome::Unreachable`] — a structured outcome
/// the driver can react to, instead of a simulator hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommOutcome {
    /// The logical qubit teleported to its destination.
    Delivered,
    /// No surviving path (or a dead endpoint); nothing moved.
    Unreachable,
}

/// Completion record handed to the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommDone {
    /// The completed communication.
    pub id: CommId,
    /// Caller-supplied tag.
    pub tag: u64,
    /// Channel source.
    pub src: Coord,
    /// Channel destination.
    pub dst: Coord,
    /// Submission time.
    pub issued_at: SimTime,
    /// Completion time (data teleport finished, or the drop decision).
    pub completed_at: SimTime,
    /// Whether the data arrived or the communication was dropped.
    pub outcome: CommOutcome,
}

/// The workload side of a simulation: submits communications and reacts
/// to completions. Implemented by the layout schedulers in `qic-core`.
pub trait Driver {
    /// Called once at time zero; submit the initial communications here.
    fn start(&mut self, api: &mut SimApi<'_>);

    /// Called whenever a communication completes.
    fn on_complete(&mut self, done: CommDone, api: &mut SimApi<'_>);

    /// Called when a timer set by [`SimApi::notify_after`] fires. Layout
    /// schedulers use this to model logical gate latency between a
    /// channel's completion and the follow-up communication.
    fn on_notify(&mut self, tag: u64, api: &mut SimApi<'_>) {
        let _ = (tag, api);
    }
}

/// A driver that submits exactly one communication.
#[derive(Debug, Clone)]
pub struct OneShotDriver {
    src: Coord,
    dst: Coord,
    /// Completion record, if finished.
    pub done: Option<CommDone>,
}

impl OneShotDriver {
    /// One communication from `src` to `dst`.
    pub fn new(src: Coord, dst: Coord) -> Self {
        OneShotDriver {
            src,
            dst,
            done: None,
        }
    }
}

impl Driver for OneShotDriver {
    fn start(&mut self, api: &mut SimApi<'_>) {
        api.submit_now(self.src, self.dst, 0);
    }

    fn on_complete(&mut self, done: CommDone, _api: &mut SimApi<'_>) {
        self.done = Some(done);
    }
}

/// A driver that submits a fixed batch at time zero.
#[derive(Debug, Clone)]
pub struct BatchDriver {
    batch: Vec<(Coord, Coord)>,
    /// Completion records in completion order.
    pub completions: Vec<CommDone>,
}

impl BatchDriver {
    /// Submits every `(src, dst)` pair at start.
    pub fn new(batch: Vec<(Coord, Coord)>) -> Self {
        BatchDriver {
            batch,
            completions: Vec::new(),
        }
    }
}

impl Driver for BatchDriver {
    fn start(&mut self, api: &mut SimApi<'_>) {
        for (i, &(src, dst)) in self.batch.iter().enumerate() {
            api.submit_now(src, dst, i as u64);
        }
    }

    fn on_complete(&mut self, done: CommDone, _api: &mut SimApi<'_>) {
        self.completions.push(done);
    }
}

// ---------------------------------------------------------------------------
// Events and world state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum Event {
    /// The comm's head-of-line pair attempts injection at the source.
    SourceTry { comm: u32 },
    /// A chained pair finished a teleport hop.
    TeleportDone { token: u32 },
    /// A wire may have produced pairs for its waiters.
    WireWake { edge: u32 },
    /// A purifier unit finished a cascade job.
    PurifyDone {
        site: u32,
        comm: u32,
        ops: u32,
        produces: bool,
    },
    /// The final data teleport of a communication finished.
    DataTeleportDone { comm: u32 },
    /// A communication with no surviving path is dropped (fault-aware
    /// topologies only).
    Dropped { comm: u32 },
    /// A deferred driver submission.
    Submit { src: Coord, dst: Coord, tag: u64 },
    /// A driver timer.
    Notify { tag: u64 },
}

/// Waiter-id encoding: tokens use their index, comm sources set the high
/// bit.
const SOURCE_FLAG: u64 = 1 << 63;

#[derive(Debug, Clone, Copy)]
struct Token {
    comm: u32,
    /// Index into the comm's route nodes where the pair currently sits.
    pos: u16,
    /// Accumulated classical correction frame.
    frame: PauliFrame,
    alive: bool,
}

#[derive(Debug)]
struct Comm {
    src: Coord,
    dst: Coord,
    tag: u64,
    /// The channel's port path, one entry per hop.
    ports: Vec<Port>,
    /// Dense node indices along the path (`ports.len() + 1` entries).
    nodes: Vec<u32>,
    /// Link index crossed by each hop.
    links: Vec<u32>,
    raw_to_spawn: u64,
    arrivals: u64,
    outputs: u64,
    needed_outputs: u64,
    issued_at: SimTime,
    purify_op_time: Duration,
    data_teleport_time: Duration,
    source_waiting: bool,
    done: bool,
}

#[derive(Debug)]
struct PurifySite {
    units: u32,
    units_busy: u32,
    queue: VecDeque<(u32, u32, bool, Duration)>, // (comm, ops, produces, dur)
    busy_ns: u128,
}

/// The teleporters of one dimension set: `t` split as evenly as possible
/// across the fabric's port classes (the mesh's X set rounds up, exactly
/// as in Figure 6). [`World::new`] requires `t ≥ classes`, so every
/// class gets at least one without inflating the per-node budget.
fn teleset_share(t: u32, classes: usize, class: usize) -> u32 {
    let classes = classes as u32;
    let base = t / classes;
    let extra = u32::from((class as u32) < t % classes);
    (base + extra).max(1)
}

struct World<T: Topology> {
    cfg: NetConfig,
    topo: T,
    router: Box<dyn Router>,
    /// Cached `topo.ports_per_node()`.
    ports_per_node: usize,
    /// Cached `topo.port_classes()`.
    classes: usize,
    /// Whether bubble flow control is active (cyclic fabric or adaptive
    /// routing; see [`NetConfig::needs_bubble`]).
    bubble: bool,
    /// Cached `topo.fault_aware()`: gates drop/reroute accounting and
    /// the report's fault block, so healthy runs cost (and emit) nothing.
    fault_aware: bool,
    queue: EventQueue<Event>,
    rng: SimRng,
    comms: Vec<Comm>,
    tokens: Vec<Token>,
    free_tokens: Vec<u32>,
    /// Teleporter pools: `node_index * port_classes + port_class`.
    telesets: Vec<ServerPool>,
    /// Link wires by link index.
    wires: Vec<LinkWire>,
    /// Storage: `node_index * ports_per_node + incoming port index`.
    storage: Vec<Storage>,
    /// Purifier nodes by node index.
    sites: Vec<PurifySite>,
    /// Open channels per link — the contention signal adaptive routing
    /// consults.
    channel_load: Vec<u32>,
    live_comms: u64,
    // statistics
    teleport_ops: u64,
    purify_ops: u64,
    purified_outputs: u64,
    teleporter_stalls: u64,
    wire_stalls: u64,
    storage_stalls: u64,
    comms_completed: u64,
    comms_dropped: u64,
    comms_rerouted: u64,
    /// Sum over delivered comms of `routed hops / healthy hops`.
    route_inflation_sum: f64,
    comm_latency_us: Tally,
    /// Raw per-communication latencies (µs), kept for exact
    /// end-of-run percentiles.
    latency_samples: Vec<f64>,
}

/// The non-generic slice of [`World`] the driver-facing API needs, so
/// [`SimApi`] (and therefore [`Driver`]) stays independent of the
/// topology type parameter.
trait WorldApi {
    fn now(&self) -> SimTime;
    fn submit(&mut self, src: Coord, dst: Coord, tag: u64) -> CommId;
    fn schedule_submit(&mut self, delay: Duration, src: Coord, dst: Coord, tag: u64);
    fn schedule_notify(&mut self, delay: Duration, tag: u64);
    fn live_comms(&self) -> u64;
}

impl<T: Topology> WorldApi for World<T> {
    fn now(&self) -> SimTime {
        self.queue.now()
    }

    fn submit(&mut self, src: Coord, dst: Coord, tag: u64) -> CommId {
        World::submit(self, src, dst, tag)
    }

    fn schedule_submit(&mut self, delay: Duration, src: Coord, dst: Coord, tag: u64) {
        self.queue
            .schedule_after(delay, Event::Submit { src, dst, tag });
    }

    fn schedule_notify(&mut self, delay: Duration, tag: u64) {
        self.queue.schedule_after(delay, Event::Notify { tag });
    }

    fn live_comms(&self) -> u64 {
        self.live_comms
    }
}

/// The driver-facing API: submit communications, read the clock.
pub struct SimApi<'a> {
    world: &'a mut (dyn WorldApi + 'a),
}

impl SimApi<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// Submits a communication immediately. Returns its id.
    pub fn submit_now(&mut self, src: Coord, dst: Coord, tag: u64) -> CommId {
        self.world.submit(src, dst, tag)
    }

    /// Submits a communication after a delay (e.g. a logical gate time).
    pub fn submit_after(&mut self, delay: Duration, src: Coord, dst: Coord, tag: u64) {
        self.world.schedule_submit(delay, src, dst, tag);
    }

    /// Requests a [`Driver::on_notify`] callback after `delay`.
    pub fn notify_after(&mut self, delay: Duration, tag: u64) {
        self.world.schedule_notify(delay, tag);
    }

    /// Communications submitted so far that have not completed.
    pub fn live_comms(&self) -> u64 {
        self.world.live_comms()
    }
}

// ---------------------------------------------------------------------------
// World mechanics
// ---------------------------------------------------------------------------

impl<T: Topology> World<T> {
    fn new(cfg: NetConfig, topo: T, router: Box<dyn Router>) -> World<T> {
        cfg.validate().expect("configuration must validate");
        let nodes = topo.nodes();
        let classes = topo.port_classes();
        let ports_per_node = topo.ports_per_node();
        let t = cfg.teleporters_per_node;
        // `NetConfig::validate` checks these against the config's own
        // fabric; re-check against the topology actually supplied, which
        // may differ via `NetworkSim::with_topology` / `with_router`.
        assert!(
            t as usize >= classes,
            "teleporters_per_node ({t}) must cover the fabric's {classes} \
             port classes (one teleporter set per dimension)"
        );
        let bubble = cfg.needs_bubble() || !topo.dor_is_acyclic();
        assert!(
            !bubble || t >= 2,
            "bubble flow control (cyclic fabric or adaptive routing) needs \
             at least two storage cells per link, i.e. teleporters_per_node ≥ 2"
        );
        let mut telesets = Vec::with_capacity(nodes * classes);
        let mut storage = Vec::with_capacity(nodes * ports_per_node);
        let mut sites = Vec::with_capacity(nodes);
        for node in 0..nodes {
            // Fault-aware topologies may degrade a node's teleporter
            // pool; healthy fabrics keep the configured budget.
            let t_node = topo.teleporter_capacity(node, t);
            for class in 0..classes {
                telesets.push(ServerPool::new(teleset_share(t_node, classes, class)));
            }
            for _ in 0..ports_per_node {
                storage.push(Storage::new(t.max(1)));
            }
            sites.push(PurifySite {
                units: cfg.purifiers_per_site,
                units_busy: 0,
                queue: VecDeque::new(),
                busy_ns: 0,
            });
        }
        // One pair per tgen per generator; `link_cost_factor` models extra
        // raw-pair consumption (virtual-wire purification).
        let tgen = cfg.times.generate();
        let interval_ns = (tgen.as_nanos() as f64 * cfg.link_cost_factor
            / f64::from(cfg.generators_per_edge))
        .round()
        .max(1.0) as u64;
        let wires = (0..topo.links())
            .map(|_| {
                LinkWire::new(
                    Duration::from_nanos(interval_ns),
                    u64::from(cfg.teleporters_per_node.max(1)),
                )
            })
            .collect();
        let channel_load = vec![0; topo.links()];
        let seed = cfg.seed;
        let fault_aware = topo.fault_aware();
        World {
            cfg,
            topo,
            router,
            ports_per_node,
            classes,
            bubble,
            fault_aware,
            queue: EventQueue::new(),
            rng: SimRng::seed_from(seed),
            comms: Vec::new(),
            tokens: Vec::new(),
            free_tokens: Vec::new(),
            telesets,
            wires,
            storage,
            sites,
            channel_load,
            live_comms: 0,
            teleport_ops: 0,
            purify_ops: 0,
            purified_outputs: 0,
            teleporter_stalls: 0,
            wire_stalls: 0,
            storage_stalls: 0,
            comms_completed: 0,
            comms_dropped: 0,
            comms_rerouted: 0,
            route_inflation_sum: 0.0,
            comm_latency_us: Tally::new(),
            latency_samples: Vec::new(),
        }
    }

    fn submit(&mut self, src: Coord, dst: Coord, tag: u64) -> CommId {
        assert!(
            self.topo.contains(src) && self.topo.contains(dst),
            "endpoints must be on the fabric grid"
        );
        let id = self.comms.len() as u32;
        let s = self.topo.node_index(src);
        let d = self.topo.node_index(dst);
        if self.fault_aware && !self.topo.is_reachable(s, d) {
            // No surviving path (or a dead endpoint): surface a
            // structured Unreachable outcome instead of hanging. The
            // drop completes through the normal event flow so drivers
            // still see every submission finish.
            let comm = Comm {
                src,
                dst,
                tag,
                ports: Vec::new(),
                nodes: Vec::new(),
                links: Vec::new(),
                raw_to_spawn: 0,
                arrivals: 0,
                outputs: 0,
                needed_outputs: 0,
                issued_at: self.queue.now(),
                purify_op_time: Duration::ZERO,
                data_teleport_time: Duration::ZERO,
                source_waiting: false,
                done: false,
            };
            self.comms.push(comm);
            self.live_comms += 1;
            self.queue.schedule_now(Event::Dropped { comm: id });
            return CommId(id);
        }
        let ports = {
            let topo = &self.topo;
            let load = &self.channel_load;
            self.router.route(topo, s, d, &|link| load[link])
        };
        debug_assert_eq!(
            ports.len() as u32,
            self.topo.distance(s, d),
            "routers must return minimal routes"
        );
        let mut nodes = Vec::with_capacity(ports.len() + 1);
        let mut links = Vec::with_capacity(ports.len());
        let mut at = s;
        nodes.push(at as u32);
        for &port in &ports {
            links.push(self.topo.link_index(at, port) as u32);
            at = self
                .topo
                .neighbor(at, port)
                .expect("routes follow wired ports");
            nodes.push(at as u32);
        }
        debug_assert_eq!(at, d, "routes must end at the destination");
        for &link in &links {
            self.channel_load[link as usize] += 1;
        }
        if self.fault_aware {
            // Detour accounting: routed hops vs the healthy fabric's
            // minimal distance.
            let healthy = self.topo.healthy_distance(s, d);
            if ports.len() as u32 > healthy {
                self.comms_rerouted += 1;
            }
            self.route_inflation_sum += if healthy == 0 {
                1.0
            } else {
                ports.len() as f64 / f64::from(healthy)
            };
        }
        let hops = ports.len() as u64;
        let span_cells = hops * self.cfg.hop_cells;
        let comm = Comm {
            src,
            dst,
            tag,
            ports,
            nodes,
            links,
            raw_to_spawn: self.cfg.raw_pairs_per_comm(),
            arrivals: 0,
            outputs: 0,
            needed_outputs: u64::from(self.cfg.outputs_per_comm),
            issued_at: self.queue.now(),
            purify_op_time: self.cfg.times.purify_round(span_cells),
            data_teleport_time: self.cfg.times.teleport(span_cells),
            source_waiting: false,
            done: false,
        };
        self.live_comms += 1;
        if hops == 0 {
            // Co-located endpoints: only the local data handoff remains.
            let dt = comm.data_teleport_time;
            self.comms.push(comm);
            self.queue
                .schedule_after(dt, Event::DataTeleportDone { comm: id });
        } else {
            self.comms.push(comm);
            self.queue.schedule_now(Event::SourceTry { comm: id });
        }
        CommId(id)
    }

    // --- resource indexing helpers -----------------------------------

    /// The resources hop `pos` of `comm` needs: (link, teleset, storage).
    fn hop_resources(&self, comm: &Comm, pos: usize) -> (usize, usize, usize) {
        let here = comm.nodes[pos] as usize;
        let port = comm.ports[pos];
        let next = comm.nodes[pos + 1] as usize;
        let link = comm.links[pos] as usize;
        let teleset = here * self.classes + self.topo.port_class(port);
        let storage = next * self.ports_per_node + self.topo.reverse_port(here, port).index();
        (link, teleset, storage)
    }

    /// Whether hop `pos` enters a new dimension ring: injection, or a
    /// port-class change (the turn between teleporter sets in Figure 6).
    fn enters_ring(&self, comm: &Comm, pos: usize) -> bool {
        pos == 0
            || self.topo.port_class(comm.ports[pos - 1]) != self.topo.port_class(comm.ports[pos])
    }

    /// Service time of hop `pos`: turn penalty (dimension change) plus the
    /// local teleport operations plus the classical notification.
    fn hop_service(&self, comm: &Comm, pos: usize) -> Duration {
        let turn = if pos > 0 && self.enters_ring(comm, pos) {
            self.cfg.times.ballistic(self.cfg.turn_cells)
        } else {
            Duration::ZERO
        };
        turn + self.cfg.times.teleport(self.cfg.hop_cells)
    }

    // --- token machinery ----------------------------------------------

    fn alloc_token(&mut self, comm: u32) -> u32 {
        let token = Token {
            comm,
            pos: 0,
            frame: PauliFrame::IDENTITY,
            alive: true,
        };
        if let Some(idx) = self.free_tokens.pop() {
            self.tokens[idx as usize] = token;
            idx
        } else {
            self.tokens.push(token);
            (self.tokens.len() - 1) as u32
        }
    }

    fn free_token(&mut self, idx: u32) {
        self.tokens[idx as usize].alive = false;
        self.free_tokens.push(idx);
    }

    /// Attempts to fire hop `pos` for `comm`: returns `false` (after
    /// queueing the waiter) if any resource is missing.
    ///
    /// `waiter` is the id to enqueue on the blocking resource: the token
    /// id for in-flight pairs, or `SOURCE_FLAG | comm` for injection.
    fn try_fire_hop(&mut self, comm_id: u32, pos: usize, waiter: u64) -> bool {
        let (edge, teleset, storage, reserve) = {
            let comm = &self.comms[comm_id as usize];
            let (edge, teleset, storage) = self.hop_resources(comm, pos);
            // Bubble flow control: ring-entry hops must leave one free
            // downstream cell so cyclic fabrics cannot deadlock.
            let reserve = u32::from(self.bubble && self.enters_ring(comm, pos));
            (edge, teleset, storage, reserve)
        };
        let now = self.queue.now();
        // Check all three, commit only if all are available.
        if self.storage[storage].free_cells() <= reserve {
            self.storage_stalls += 1;
            self.storage[storage].enqueue_waiter(waiter);
            return false;
        }
        {
            let wire = &mut self.wires[edge];
            wire.refresh(now);
            if wire.stock(now) == 0 {
                self.wire_stalls += 1;
                wire.enqueue_waiter(waiter);
                let at = wire.next_available(now);
                if !wire.wake_pending() {
                    wire.set_wake_pending(true);
                    self.queue
                        .schedule_at(at, Event::WireWake { edge: edge as u32 });
                }
                return false;
            }
        }
        if !self.telesets[teleset].available() {
            self.teleporter_stalls += 1;
            self.telesets[teleset].enqueue_waiter(waiter);
            return false;
        }
        // Commit. Fault-aware topologies may charge a transient hot-spot
        // penalty on this link; healthy fabrics add zero.
        let service = {
            let comm = &self.comms[comm_id as usize];
            self.hop_service(comm, pos)
        } + Duration::from_nanos(self.topo.hop_penalty_ns(edge, now.as_nanos()));
        assert!(self.wires[edge].try_take(now), "stock checked above");
        self.telesets[teleset].acquire(service);
        self.storage[storage].reserve();
        self.teleport_ops += 1;
        let token_idx = if waiter & SOURCE_FLAG != 0 {
            self.alloc_token(comm_id)
        } else {
            waiter as u32
        };
        // Record the classical correction bits of this teleport.
        let (x, z) = (self.rng.chance(0.5), self.rng.chance(0.5));
        let t = &mut self.tokens[token_idx as usize];
        t.frame = t.frame.accumulate(x, z);
        t.pos = pos as u16; // position it fired FROM; lands at pos+1
        self.queue
            .schedule_after(service, Event::TeleportDone { token: token_idx });
        true
    }

    /// Re-activates a waiter after a resource freed up.
    fn wake(&mut self, waiter: u64) {
        if waiter & SOURCE_FLAG != 0 {
            let comm = (waiter & !SOURCE_FLAG) as u32;
            self.comms[comm as usize].source_waiting = false;
            self.source_try(comm);
        } else {
            let token = waiter as u32;
            if !self.tokens[token as usize].alive {
                return;
            }
            let pos = usize::from(self.tokens[token as usize].pos);
            let comm = self.tokens[token as usize].comm;
            let _ = self.try_fire_hop(comm, pos, u64::from(token));
        }
    }

    fn drain_teleset_waiters(&mut self, teleset: usize) {
        while self.telesets[teleset].available() {
            match self.telesets[teleset].pop_waiter() {
                Some(w) => self.wake(w),
                None => break,
            }
        }
    }

    fn drain_storage_waiters(&mut self, storage: usize) {
        // Budgeted drain: a bubble-reserved waiter can re-enqueue itself
        // on this same storage while cells remain free, so give each
        // queued waiter at most one chance per drain.
        let mut budget = self.storage[storage].queue_len();
        while budget > 0 && self.storage[storage].available() {
            match self.storage[storage].pop_waiter() {
                Some(w) => self.wake(w),
                None => break,
            }
            budget -= 1;
        }
    }

    /// The comm's head-of-line injection attempt.
    fn source_try(&mut self, comm_id: u32) {
        let c = &mut self.comms[comm_id as usize];
        if c.raw_to_spawn == 0 || c.source_waiting {
            return;
        }
        let waiter = SOURCE_FLAG | u64::from(comm_id);
        // Mark waiting before the attempt; cleared on success.
        self.comms[comm_id as usize].source_waiting = true;
        if self.try_fire_hop(comm_id, 0, waiter) {
            let c = &mut self.comms[comm_id as usize];
            c.source_waiting = false;
            c.raw_to_spawn -= 1;
            if c.raw_to_spawn > 0 {
                self.queue.schedule_now(Event::SourceTry { comm: comm_id });
            }
        }
    }

    // --- endpoint purification ----------------------------------------

    fn feed_purifier(&mut self, comm_id: u32) {
        let depth = self.cfg.purify_depth;
        let (site_idx, ops, produces, dur) = {
            let c = &mut self.comms[comm_id as usize];
            c.arrivals += 1;
            let period = 1u64 << depth;
            let k = (c.arrivals - 1) % period;
            let ops = k.trailing_ones().min(depth);
            let produces = c.arrivals % period == 0;
            (self.topo.node_index(c.dst), ops, produces, c.purify_op_time)
        };
        if ops == 0 {
            // Parked at L0; no purifier time consumed.
            return;
        }
        let job_dur = dur * u64::from(ops);
        let site = &mut self.sites[site_idx];
        if site.units_busy < site.units {
            site.units_busy += 1;
            site.busy_ns += u128::from(job_dur.as_nanos());
            self.queue.schedule_after(
                job_dur,
                Event::PurifyDone {
                    site: site_idx as u32,
                    comm: comm_id,
                    ops,
                    produces,
                },
            );
        } else {
            site.queue.push_back((comm_id, ops, produces, job_dur));
        }
    }

    fn purify_done(&mut self, site_idx: u32, comm_id: u32, ops: u32, produces: bool) {
        self.purify_ops += u64::from(ops);
        if produces {
            self.purified_outputs += 1;
            let c = &mut self.comms[comm_id as usize];
            c.outputs += 1;
            if c.outputs == c.needed_outputs && !c.done {
                c.done = true;
                let dt = c.data_teleport_time;
                self.queue
                    .schedule_after(dt, Event::DataTeleportDone { comm: comm_id });
            }
        }
        // Free the unit; start the next queued job.
        let site = &mut self.sites[site_idx as usize];
        site.units_busy -= 1;
        if let Some((c, ops, produces, dur)) = site.queue.pop_front() {
            site.units_busy += 1;
            site.busy_ns += u128::from(dur.as_nanos());
            self.queue.schedule_after(
                dur,
                Event::PurifyDone {
                    site: site_idx,
                    comm: c,
                    ops,
                    produces,
                },
            );
        }
    }

    // --- event dispatch -------------------------------------------------

    fn handle(&mut self, ev: Event, driver: &mut dyn Driver) {
        match ev {
            Event::SourceTry { comm } => {
                // Clear the waiting latch set by a previous failed attempt
                // only if it was set by this path; source_try handles it.
                if !self.comms[comm as usize].source_waiting {
                    self.source_try(comm);
                }
            }
            Event::TeleportDone { token } => self.teleport_done(token),
            Event::WireWake { edge } => self.wire_wake(edge as usize),
            Event::PurifyDone {
                site,
                comm,
                ops,
                produces,
            } => {
                self.purify_done(site, comm, ops, produces);
            }
            Event::DataTeleportDone { comm } => {
                let done = {
                    let c = &mut self.comms[comm as usize];
                    c.done = true;
                    CommDone {
                        id: CommId(comm),
                        tag: c.tag,
                        src: c.src,
                        dst: c.dst,
                        issued_at: c.issued_at,
                        completed_at: self.queue.now(),
                        outcome: CommOutcome::Delivered,
                    }
                };
                // The channel closes: release its link load so adaptive
                // routing sees fresh contention.
                for i in 0..self.comms[comm as usize].links.len() {
                    let link = self.comms[comm as usize].links[i] as usize;
                    self.channel_load[link] -= 1;
                }
                self.live_comms -= 1;
                self.comms_completed += 1;
                let latency = done.completed_at.since(done.issued_at);
                self.comm_latency_us.record_duration(latency);
                self.latency_samples.push(latency.as_us_f64());
                driver.on_complete(done, &mut SimApi { world: self });
            }
            Event::Dropped { comm } => {
                let done = {
                    let c = &mut self.comms[comm as usize];
                    c.done = true;
                    CommDone {
                        id: CommId(comm),
                        tag: c.tag,
                        src: c.src,
                        dst: c.dst,
                        issued_at: c.issued_at,
                        completed_at: self.queue.now(),
                        outcome: CommOutcome::Unreachable,
                    }
                };
                // A drop finishes the communication (live-comm accounting
                // and driver chaining both proceed) but records no
                // latency sample: latency statistics cover deliveries.
                self.live_comms -= 1;
                self.comms_completed += 1;
                self.comms_dropped += 1;
                driver.on_complete(done, &mut SimApi { world: self });
            }
            Event::Submit { src, dst, tag } => {
                let _ = World::submit(self, src, dst, tag);
            }
            Event::Notify { tag } => {
                driver.on_notify(tag, &mut SimApi { world: self });
            }
        }
    }

    fn teleport_done(&mut self, token_idx: u32) {
        let (comm_id, fired_pos) = {
            let t = &self.tokens[token_idx as usize];
            (t.comm, usize::from(t.pos))
        };
        let landed = fired_pos + 1;
        let teleset = {
            let comm = &self.comms[comm_id as usize];
            let (_, teleset, _) = self.hop_resources(comm, fired_pos);
            teleset
        };
        // Free the teleporter that served this hop.
        self.telesets[teleset].release();
        // Free the storage this token held at the node it fired from
        // (injection hops fire from the source and hold none).
        if fired_pos > 0 {
            let sidx = {
                let comm = &self.comms[comm_id as usize];
                let prev = comm.nodes[fired_pos - 1] as usize;
                let here = comm.nodes[fired_pos] as usize;
                let incoming = self.topo.reverse_port(prev, comm.ports[fired_pos - 1]);
                here * self.ports_per_node + incoming.index()
            };
            self.storage[sidx].free();
            self.drain_storage_waiters(sidx);
        }
        self.drain_teleset_waiters(teleset);

        let hops = self.comms[comm_id as usize].ports.len();
        self.tokens[token_idx as usize].pos = landed as u16;
        if landed == hops {
            // Arrived: hand off to the P node, freeing network storage.
            let sidx = {
                let comm = &self.comms[comm_id as usize];
                let prev = comm.nodes[landed - 1] as usize;
                let here = comm.nodes[landed] as usize;
                let incoming = self.topo.reverse_port(prev, comm.ports[landed - 1]);
                here * self.ports_per_node + incoming.index()
            };
            self.storage[sidx].free();
            self.free_token(token_idx);
            self.drain_storage_waiters(sidx);
            self.feed_purifier(comm_id);
        } else {
            let _ = self.try_fire_hop(comm_id, landed, u64::from(token_idx));
        }
    }

    fn wire_wake(&mut self, edge: usize) {
        let now = self.queue.now();
        self.wires[edge].set_wake_pending(false);
        loop {
            let stock = self.wires[edge].stock(now);
            if stock == 0 || !self.wires[edge].has_waiters() {
                break;
            }
            let w = self.wires[edge].pop_waiter().expect("has_waiters checked");
            self.wake(w);
        }
        // If tokens still wait and the wire is dry, re-arm the wake.
        if self.wires[edge].has_waiters() && self.wires[edge].stock(now) == 0 {
            let at = self.wires[edge].next_available(now);
            if !self.wires[edge].wake_pending() {
                self.wires[edge].set_wake_pending(true);
                self.queue
                    .schedule_at(at, Event::WireWake { edge: edge as u32 });
            }
        }
    }

    fn report(&mut self) -> NetReport {
        let makespan = self.queue.now().as_duration();
        let pairs_generated: u64 = self.wires.iter().map(LinkWire::produced).sum();
        let pairs_consumed: u64 = self.wires.iter().map(LinkWire::consumed).sum();
        let tele_util = if makespan == Duration::ZERO {
            0.0
        } else {
            let total: f64 = self.telesets.iter().map(|s| s.utilization(makespan)).sum();
            total / self.telesets.len() as f64
        };
        let puri_util = if makespan == Duration::ZERO {
            0.0
        } else {
            let mut total = 0.0;
            for s in &self.sites {
                total += s.busy_ns as f64
                    / (u128::from(makespan.as_nanos()) * u128::from(s.units)) as f64;
            }
            total / self.sites.len() as f64
        };
        NetReport {
            makespan,
            comms_completed: self.comms_completed,
            teleport_ops: self.teleport_ops,
            pairs_generated,
            pairs_consumed,
            purify_ops: self.purify_ops,
            purified_outputs: self.purified_outputs,
            teleporter_stalls: self.teleporter_stalls,
            wire_stalls: self.wire_stalls,
            storage_stalls: self.storage_stalls,
            comm_latency_us: self.comm_latency_us,
            latency_percentiles: Percentiles::from_samples(&self.latency_samples),
            teleporter_utilization: tele_util,
            purifier_utilization: puri_util,
            events: self.queue.events_processed(),
            fault: self.fault_aware.then(|| {
                let delivered = self.comms_completed - self.comms_dropped;
                FaultStats {
                    delivered,
                    dropped: self.comms_dropped,
                    rerouted: self.comms_rerouted,
                    mean_route_inflation: if delivered == 0 {
                        0.0
                    } else {
                        self.route_inflation_sum / delivered as f64
                    },
                }
            }),
        }
    }
}

/// The communication simulator, generic over the interconnect fabric.
///
/// The default type parameter is the config-driven [`Fabric`] enum, so
/// `NetworkSim::new(cfg)` keeps working untyped; custom [`Topology`]
/// implementations plug in through [`NetworkSim::with_topology`] (and
/// custom routing policies through [`NetworkSim::with_router`]) with
/// static dispatch on the simulation hot path.
///
/// See the crate docs for an overview; construct with a validated
/// [`NetConfig`] and run a [`Driver`] to completion.
pub struct NetworkSim<T: Topology = Fabric> {
    world: World<T>,
}

impl NetworkSim<Fabric> {
    /// Builds a simulator for the given configuration, with the fabric
    /// and routing policy the config selects.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`NetConfig::validate`].
    pub fn new(cfg: NetConfig) -> Self {
        cfg.validate().expect("configuration must validate");
        let fabric = cfg.fabric();
        NetworkSim::with_topology(cfg, fabric)
    }
}

impl<T: Topology> NetworkSim<T> {
    /// Builds a simulator over a caller-supplied topology, using the
    /// config's routing policy. The config's grid fields are ignored in
    /// favour of the topology's own shape.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`NetConfig::validate`].
    pub fn with_topology(cfg: NetConfig, topo: T) -> Self {
        let router = cfg.routing.router();
        NetworkSim::with_router(cfg, topo, router)
    }

    /// Builds a simulator over a caller-supplied topology and routing
    /// policy — the fully pluggable constructor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`NetConfig::validate`].
    pub fn with_router(cfg: NetConfig, topo: T, router: Box<dyn Router>) -> Self {
        NetworkSim {
            world: World::new(cfg, topo, router),
        }
    }

    /// The simulator's topology.
    pub fn topology(&self) -> &T {
        &self.world.topo
    }

    /// Runs the driver's workload to completion and reports.
    ///
    /// # Panics
    ///
    /// Panics if the event budget (`max_events`) is exhausted — a sign of
    /// a runaway workload or a configuration far beyond the intended
    /// scale.
    pub fn run(mut self, driver: &mut dyn Driver) -> NetReport {
        driver.start(&mut SimApi {
            world: &mut self.world,
        });
        let max_events = self.world.cfg.max_events;
        while let Some((_, ev)) = self.world.queue.pop() {
            self.world.handle(ev, driver);
            if self.world.queue.events_processed() > max_events {
                panic!(
                    "event budget exceeded ({max_events}); {} comms incomplete",
                    self.world.live_comms
                );
            }
        }
        assert_eq!(
            self.world.live_comms, 0,
            "simulation drained with live comms"
        );
        self.world.report()
    }
}

impl<T: Topology> std::fmt::Debug for NetworkSim<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkSim")
            .field("topology", &self.world.topo.name())
            .field("grid", &(self.world.topo.width(), self.world.topo.height()))
            .field("routing", &self.world.router.name())
            .field("queue", &self.world.queue)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutingPolicy;
    use crate::topology::{Mesh, TopologyKind};

    fn cfg() -> NetConfig {
        NetConfig::small_test()
    }

    #[test]
    fn single_comm_completes() {
        let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 3));
        let report = NetworkSim::new(cfg()).run(&mut driver);
        assert_eq!(report.comms_completed, 1);
        let done = driver.done.expect("completion recorded");
        assert_eq!(done.src, Coord::new(0, 0));
        assert!(done.completed_at > done.issued_at);
        // raw pairs = outputs × 2^depth = 2 × 2 = 4; hops = 6.
        assert_eq!(report.teleport_ops, 4 * 6);
        assert_eq!(report.pairs_consumed, 4 * 6);
        assert_eq!(report.purified_outputs, 2);
        assert!(report.pairs_generated >= report.pairs_consumed);
    }

    #[test]
    fn latency_exceeds_physical_floor() {
        let c = cfg();
        let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 0));
        let report = NetworkSim::new(c.clone()).run(&mut driver);
        // At minimum: 3 sequential hops for the last pair + a purify op +
        // the data teleport.
        let floor = c.times.teleport(c.hop_cells) * 3;
        assert!(report.makespan > floor);
        assert!(report.mean_latency().unwrap() > floor);
    }

    #[test]
    fn zero_hop_comm() {
        let mut driver = OneShotDriver::new(Coord::new(1, 1), Coord::new(1, 1));
        let report = NetworkSim::new(cfg()).run(&mut driver);
        assert_eq!(report.comms_completed, 1);
        assert_eq!(report.teleport_ops, 0);
        assert_eq!(report.purify_ops, 0);
    }

    #[test]
    fn latency_percentiles_populated_and_ordered() {
        let mut driver = BatchDriver::new(vec![
            (Coord::new(0, 0), Coord::new(3, 3)),
            (Coord::new(3, 0), Coord::new(0, 3)),
            (Coord::new(1, 1), Coord::new(2, 2)),
            (Coord::new(0, 2), Coord::new(3, 1)),
        ]);
        let report = NetworkSim::new(cfg()).run(&mut driver);
        let p = report.latency_percentiles.expect("comms completed");
        assert!(p.p50 <= p.p95 && p.p95 <= p.p99, "{p:?}");
        // Percentiles are actual samples, so they sit inside the tally's
        // observed range.
        assert!(p.p50 >= report.comm_latency_us.min().unwrap());
        assert!(p.p99 <= report.comm_latency_us.max().unwrap());
        assert!(report.latency_p95().unwrap() >= report.latency_p50().unwrap());
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut driver = BatchDriver::new(vec![
                (Coord::new(0, 0), Coord::new(3, 2)),
                (Coord::new(3, 0), Coord::new(0, 3)),
                (Coord::new(1, 1), Coord::new(2, 2)),
            ]);
            NetworkSim::new(cfg()).run(&mut driver)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn contention_slows_sharing_channels() {
        // Two channels crossing the same column contend for teleporters;
        // two disjoint rows do not.
        let mut c = cfg();
        c.teleporters_per_node = 2;
        c.generators_per_edge = 2;
        let mut crossing = BatchDriver::new(vec![
            (Coord::new(0, 0), Coord::new(3, 0)),
            (Coord::new(0, 0), Coord::new(3, 0)),
        ]);
        let shared = NetworkSim::new(c.clone()).run(&mut crossing);
        let mut disjoint = BatchDriver::new(vec![
            (Coord::new(0, 0), Coord::new(3, 0)),
            (Coord::new(0, 2), Coord::new(3, 2)),
        ]);
        let apart = NetworkSim::new(c).run(&mut disjoint);
        assert!(
            shared.makespan > apart.makespan,
            "shared {} vs disjoint {}",
            shared.makespan,
            apart.makespan
        );
        assert!(shared.teleporter_stalls + shared.wire_stalls > 0);
    }

    #[test]
    fn more_generators_help_when_wire_limited() {
        let mut starved = cfg();
        starved.generators_per_edge = 1;
        starved.teleporters_per_node = 8;
        let mut rich = starved.clone();
        rich.generators_per_edge = 8;
        let route = (Coord::new(0, 0), Coord::new(3, 3));
        let slow = NetworkSim::new(starved).run(&mut OneShotDriver::new(route.0, route.1));
        let fast = NetworkSim::new(rich).run(&mut OneShotDriver::new(route.0, route.1));
        assert!(slow.makespan > fast.makespan);
        assert!(slow.wire_stalls > 0, "the starved run must hit empty wires");
    }

    #[test]
    fn driver_chaining_submits_follow_ups() {
        struct PingPong {
            remaining: u32,
        }
        impl Driver for PingPong {
            fn start(&mut self, api: &mut SimApi<'_>) {
                api.submit_now(Coord::new(0, 0), Coord::new(2, 2), 1);
            }
            fn on_complete(&mut self, done: CommDone, api: &mut SimApi<'_>) {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    // Return trip after a 20µs "gate".
                    api.submit_after(Duration::from_micros(20), done.dst, done.src, done.tag + 1);
                }
            }
        }
        let mut driver = PingPong { remaining: 3 };
        let report = NetworkSim::new(cfg()).run(&mut driver);
        assert_eq!(report.comms_completed, 4);
        assert_eq!(driver.remaining, 0);
    }

    #[test]
    fn no_deadlock_under_tight_storage() {
        // Minimal resources everywhere; four crossing channels.
        let mut c = cfg();
        c.teleporters_per_node = 2;
        c.generators_per_edge = 1;
        c.purifiers_per_site = 1;
        let mut driver = BatchDriver::new(vec![
            (Coord::new(0, 0), Coord::new(3, 3)),
            (Coord::new(3, 3), Coord::new(0, 0)),
            (Coord::new(0, 3), Coord::new(3, 0)),
            (Coord::new(3, 0), Coord::new(0, 3)),
        ]);
        let report = NetworkSim::new(c).run(&mut driver);
        assert_eq!(
            report.comms_completed, 4,
            "dimension-order + per-link storage is deadlock-free"
        );
        assert!(report.storage_stalls > 0 || report.teleporter_stalls > 0);
    }

    #[test]
    fn purifier_counts_are_exact() {
        // Depth 2, 3 outputs: raw = 12; per output the cascade does
        // 2^2 − 1 = 3 ops → 9 ops total.
        let mut c = cfg();
        c.purify_depth = 2;
        c.outputs_per_comm = 3;
        let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(2, 0));
        let report = NetworkSim::new(c).run(&mut driver);
        assert_eq!(report.purified_outputs, 3);
        assert_eq!(report.purify_ops, 9);
        assert_eq!(report.teleport_ops, 12 * 2);
    }

    #[test]
    fn utilizations_are_probabilities() {
        let mut driver = BatchDriver::new(vec![
            (Coord::new(0, 0), Coord::new(3, 3)),
            (Coord::new(1, 0), Coord::new(2, 3)),
        ]);
        let report = NetworkSim::new(cfg()).run(&mut driver);
        assert!((0.0..=1.0).contains(&report.teleporter_utilization));
        assert!((0.0..=1.0).contains(&report.purifier_utilization));
        assert!(report.teleporter_utilization > 0.0);
        assert!(report.purifier_utilization > 0.0);
        assert!(report.events > 0);
    }

    #[test]
    #[should_panic(expected = "event budget exceeded")]
    fn event_budget_guard() {
        let mut c = cfg();
        c.max_events = 10;
        let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 3));
        let _ = NetworkSim::new(c).run(&mut driver);
    }

    // --- multi-topology behaviour -------------------------------------

    #[test]
    fn explicit_mesh_topology_matches_config_driven_runs() {
        let run_config = || {
            let mut d = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 2));
            NetworkSim::new(cfg()).run(&mut d)
        };
        let run_explicit = || {
            let mut d = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 2));
            NetworkSim::with_topology(cfg(), Mesh::new(4, 4)).run(&mut d)
        };
        assert_eq!(run_config(), run_explicit());
    }

    #[test]
    fn torus_wraps_shorten_corner_routes() {
        let c = cfg().with_topology(TopologyKind::Torus);
        let raw = c.raw_pairs_per_comm();
        let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 3));
        let report = NetworkSim::new(c).run(&mut driver);
        assert_eq!(report.comms_completed, 1);
        // Corner to corner is 2 hops over the wraps (6 on the mesh).
        assert_eq!(report.teleport_ops, raw * 2);

        let mesh =
            NetworkSim::new(cfg()).run(&mut OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 3)));
        assert!(
            report.makespan < mesh.makespan,
            "shorter route, faster comm"
        );
    }

    #[test]
    fn hypercube_routes_by_hamming_distance() {
        let c = cfg().with_topology(TopologyKind::Hypercube);
        let raw = c.raw_pairs_per_comm();
        // (0,0) is node 0, (3,3) is node 15: Hamming distance 4.
        let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 3));
        let report = NetworkSim::new(c).run(&mut driver);
        assert_eq!(report.comms_completed, 1);
        assert_eq!(report.teleport_ops, raw * 4);
    }

    #[test]
    fn every_fabric_and_policy_completes_crossing_traffic() {
        for kind in TopologyKind::ALL {
            for routing in RoutingPolicy::ALL {
                let c = cfg().with_topology(kind).with_routing(routing);
                let mut driver = BatchDriver::new(vec![
                    (Coord::new(0, 0), Coord::new(3, 3)),
                    (Coord::new(3, 3), Coord::new(0, 0)),
                    (Coord::new(0, 3), Coord::new(3, 0)),
                    (Coord::new(3, 0), Coord::new(0, 3)),
                    (Coord::new(1, 2), Coord::new(2, 1)),
                ]);
                let report = NetworkSim::new(c).run(&mut driver);
                assert_eq!(report.comms_completed, 5, "{kind}/{routing}");
            }
        }
    }

    #[test]
    fn cyclic_fabrics_survive_tight_storage() {
        // The bubble-flow-control stress: minimal legal resources on a
        // wrapped fabric with adaptive routing and crossing traffic.
        let mut c = cfg()
            .with_topology(TopologyKind::Torus)
            .with_routing(RoutingPolicy::MinimalAdaptive);
        c.teleporters_per_node = 2;
        c.generators_per_edge = 1;
        c.purifiers_per_site = 1;
        let mut driver = BatchDriver::new(vec![
            (Coord::new(0, 0), Coord::new(2, 2)),
            (Coord::new(2, 2), Coord::new(0, 0)),
            (Coord::new(0, 2), Coord::new(2, 0)),
            (Coord::new(2, 0), Coord::new(0, 2)),
            (Coord::new(3, 1), Coord::new(1, 3)),
            (Coord::new(1, 3), Coord::new(3, 1)),
        ]);
        let report = NetworkSim::new(c).run(&mut driver);
        assert_eq!(report.comms_completed, 6);
    }

    #[test]
    fn adaptive_routing_is_deterministic() {
        let run = || {
            let mut driver = BatchDriver::new(vec![
                (Coord::new(0, 0), Coord::new(3, 3)),
                (Coord::new(0, 0), Coord::new(3, 3)),
                (Coord::new(3, 0), Coord::new(0, 3)),
            ]);
            let c = cfg().with_routing(RoutingPolicy::MinimalAdaptive);
            NetworkSim::new(c).run(&mut driver)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn adaptive_spreads_identical_channels_across_paths() {
        // Two same-endpoint channels on a mesh: dimension-order stacks
        // them on one path; minimal-adaptive opens the second on a
        // disjoint minimal path, cutting wire contention.
        let mut c = cfg();
        c.teleporters_per_node = 2;
        c.generators_per_edge = 1;
        let batch = vec![
            (Coord::new(0, 0), Coord::new(3, 3)),
            (Coord::new(0, 0), Coord::new(3, 3)),
        ];
        let dor = NetworkSim::new(c.clone()).run(&mut BatchDriver::new(batch.clone()));
        let ada = NetworkSim::new(c.with_routing(RoutingPolicy::MinimalAdaptive))
            .run(&mut BatchDriver::new(batch));
        assert!(
            ada.wire_stalls < dor.wire_stalls,
            "adaptive {} vs dor {} wire stalls",
            ada.wire_stalls,
            dor.wire_stalls
        );
        // (Makespans are close but not strictly ordered: adaptive also
        // pays the bubble-flow-control injection reserve.)
    }

    #[test]
    #[should_panic(expected = "port classes")]
    fn with_topology_rechecks_teleporter_coverage() {
        // The config validates as a mesh (2 classes), but the supplied
        // hypercube has 4 — `with_topology` must re-check against the
        // fabric actually used, not the config's.
        let mut c = cfg();
        c.teleporters_per_node = 2;
        let _ = NetworkSim::with_topology(c, crate::topology::Hypercube::new(4));
    }

    #[test]
    fn debug_names_the_fabric() {
        let sim = NetworkSim::new(cfg().with_topology(TopologyKind::Hypercube));
        let dbg = format!("{sim:?}");
        assert!(dbg.contains("hypercube"), "{dbg}");
        assert!(dbg.contains("dor"), "{dbg}");
    }
}
