//! Mesh topology and dimension-order routing — **Section 3.2**.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A site on the mesh (column `x`, row `y`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    /// Column index.
    pub x: u16,
    /// Row index.
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate.
    pub fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance to another coordinate.
    pub fn manhattan(self, other: Coord) -> u32 {
        u32::from(self.x.abs_diff(other.x)) + u32::from(self.y.abs_diff(other.y))
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// A hop direction on the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dir {
    /// +x.
    East,
    /// −x.
    West,
    /// +y.
    North,
    /// −y.
    South,
}

impl Dir {
    /// All four directions.
    pub const ALL: [Dir; 4] = [Dir::East, Dir::West, Dir::North, Dir::South];

    /// Whether this direction moves along the X dimension.
    pub fn is_x(self) -> bool {
        matches!(self, Dir::East | Dir::West)
    }

    /// The opposite direction.
    pub fn opposite(self) -> Dir {
        match self {
            Dir::East => Dir::West,
            Dir::West => Dir::East,
            Dir::North => Dir::South,
            Dir::South => Dir::North,
        }
    }

    /// Index 0..4 for dense per-direction arrays.
    pub fn index(self) -> usize {
        match self {
            Dir::East => 0,
            Dir::West => 1,
            Dir::North => 2,
            Dir::South => 3,
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dir::East => "E",
            Dir::West => "W",
            Dir::North => "N",
            Dir::South => "S",
        };
        f.write_str(s)
    }
}

/// An undirected mesh edge, identified by its lower-left endpoint and
/// orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId {
    /// The endpoint with the smaller coordinate.
    pub base: Coord,
    /// `true` for a horizontal (x-direction) edge.
    pub horizontal: bool,
}

/// A rectangular mesh of T' nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Mesh {
    /// A `width × height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh must be non-empty");
        Mesh { width, height }
    }

    /// Mesh width.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Mesh height.
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        usize::from(self.width) * usize::from(self.height)
    }

    /// Number of undirected edges.
    pub fn edges(&self) -> usize {
        let w = usize::from(self.width);
        let h = usize::from(self.height);
        (w - 1) * h + w * (h - 1)
    }

    /// Whether a coordinate lies on the mesh.
    pub fn contains(&self, c: Coord) -> bool {
        c.x < self.width && c.y < self.height
    }

    /// Dense index of a node.
    pub fn node_index(&self, c: Coord) -> usize {
        usize::from(c.y) * usize::from(self.width) + usize::from(c.x)
    }

    /// The neighbour of `c` in direction `d`, if on the mesh.
    pub fn step(&self, c: Coord, d: Dir) -> Option<Coord> {
        let next = match d {
            Dir::East => Coord {
                x: c.x.checked_add(1)?,
                y: c.y,
            },
            Dir::West => Coord {
                x: c.x.checked_sub(1)?,
                y: c.y,
            },
            Dir::North => Coord {
                x: c.x,
                y: c.y.checked_add(1)?,
            },
            Dir::South => Coord {
                x: c.x,
                y: c.y.checked_sub(1)?,
            },
        };
        self.contains(next).then_some(next)
    }

    /// The edge crossed when stepping from `c` in direction `d`.
    ///
    /// # Panics
    ///
    /// Panics if the step leaves the mesh.
    pub fn edge(&self, c: Coord, d: Dir) -> EdgeId {
        let next = self.step(c, d).expect("edge step must stay on the mesh");
        let base = if (next.x, next.y) < (c.x, c.y) {
            next
        } else {
            c
        };
        EdgeId {
            base,
            horizontal: d.is_x(),
        }
    }

    /// Dense index of an edge (horizontal edges first, row-major).
    pub fn edge_index(&self, e: EdgeId) -> usize {
        let w = usize::from(self.width);
        let h = usize::from(self.height);
        if e.horizontal {
            usize::from(e.base.y) * (w - 1) + usize::from(e.base.x)
        } else {
            (w - 1) * h + usize::from(e.base.y) * w + usize::from(e.base.x)
        }
    }

    /// The dimension-order (X then Y) route from `from` to `to`: the
    /// sequence of directions to follow. Empty when `from == to`.
    pub fn route(&self, from: Coord, to: Coord) -> Vec<Dir> {
        assert!(
            self.contains(from) && self.contains(to),
            "route endpoints must be on the mesh"
        );
        let mut dirs = Vec::with_capacity(from.manhattan(to) as usize);
        let dx = i32::from(to.x) - i32::from(from.x);
        let dy = i32::from(to.y) - i32::from(from.y);
        for _ in 0..dx.abs() {
            dirs.push(if dx > 0 { Dir::East } else { Dir::West });
        }
        for _ in 0..dy.abs() {
            dirs.push(if dy > 0 { Dir::North } else { Dir::South });
        }
        dirs
    }

    /// The node sequence of a route, including both endpoints.
    pub fn route_nodes(&self, from: Coord, to: Coord) -> Vec<Coord> {
        let mut nodes = vec![from];
        let mut at = from;
        for d in self.route(from, to) {
            at = self.step(at, d).expect("route stays on mesh");
            nodes.push(at);
        }
        nodes
    }

    /// Iterates over all node coordinates in row-major order.
    pub fn iter_nodes(&self) -> impl Iterator<Item = Coord> + '_ {
        let w = self.width;
        (0..self.height).flat_map(move |y| (0..w).map(move |x| Coord { x, y }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let m = Mesh::new(4, 3);
        assert_eq!(m.nodes(), 12);
        assert_eq!(m.edges(), 3 * 3 + 4 * 2);
        assert_eq!(m.iter_nodes().count(), 12);
    }

    #[test]
    fn node_indices_are_dense_and_unique() {
        let m = Mesh::new(5, 7);
        let mut seen = vec![false; m.nodes()];
        for c in m.iter_nodes() {
            let i = m.node_index(c);
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn edge_indices_are_dense_and_unique() {
        let m = Mesh::new(4, 4);
        let mut seen = vec![false; m.edges()];
        for c in m.iter_nodes() {
            for d in [Dir::East, Dir::North] {
                if m.step(c, d).is_some() {
                    let i = m.edge_index(m.edge(c, d));
                    assert!(!seen[i], "duplicate edge index {i}");
                    seen[i] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn edges_are_direction_symmetric() {
        let m = Mesh::new(4, 4);
        let c = Coord::new(1, 1);
        let e_east = m.edge(c, Dir::East);
        let e_back = m.edge(Coord::new(2, 1), Dir::West);
        assert_eq!(e_east, e_back);
        let e_north = m.edge(c, Dir::North);
        let e_south = m.edge(Coord::new(1, 2), Dir::South);
        assert_eq!(e_north, e_south);
    }

    #[test]
    fn steps_respect_borders() {
        let m = Mesh::new(3, 3);
        assert_eq!(m.step(Coord::new(0, 0), Dir::West), None);
        assert_eq!(m.step(Coord::new(0, 0), Dir::South), None);
        assert_eq!(m.step(Coord::new(2, 2), Dir::East), None);
        assert_eq!(m.step(Coord::new(1, 1), Dir::East), Some(Coord::new(2, 1)));
    }

    #[test]
    fn dimension_order_routes_x_first() {
        let m = Mesh::new(8, 8);
        let r = m.route(Coord::new(1, 1), Coord::new(4, 6));
        assert_eq!(r.len(), 8);
        assert!(r[..3].iter().all(|d| *d == Dir::East));
        assert!(r[3..].iter().all(|d| *d == Dir::North));
        // At most one turn.
        let turns = r.windows(2).filter(|w| w[0].is_x() != w[1].is_x()).count();
        assert!(turns <= 1);
    }

    #[test]
    fn route_nodes_connect() {
        let m = Mesh::new(8, 8);
        let nodes = m.route_nodes(Coord::new(7, 0), Coord::new(0, 3));
        assert_eq!(nodes.len(), 11);
        assert_eq!(nodes[0], Coord::new(7, 0));
        assert_eq!(*nodes.last().unwrap(), Coord::new(0, 3));
        for w in nodes.windows(2) {
            assert_eq!(w[0].manhattan(w[1]), 1);
        }
    }

    #[test]
    fn directions() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_eq!(d.is_x(), d.opposite().is_x());
        }
        let idx: Vec<usize> = Dir::ALL.iter().map(|d| d.index()).collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn manhattan() {
        assert_eq!(Coord::new(0, 0).manhattan(Coord::new(3, 4)), 7);
        assert_eq!(Coord::new(5, 5).manhattan(Coord::new(5, 5)), 0);
    }
}
