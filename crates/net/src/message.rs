//! Classical control messages — **Section 3.2, "Local Routing Control"**.
//!
//! "Each qubit is associated with a classical message which travels
//! alongside the qubit in a parallel classical network. … A qubit's
//! message contains the ID assigned by the G node, the destination of this
//! qubit, the destination of its partner, and space for the cumulative
//! correction information."

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::topology::Coord;

/// A cumulative Pauli-frame correction: the two classical bits per
/// teleportation, accumulated over a chain (Figure 5: "correction
/// information … can be accumulated over multiple teleportations and
/// performed in aggregate at each end").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash, Serialize, Deserialize)]
pub struct PauliFrame {
    /// Accumulated bit-flip (X) correction.
    pub x: bool,
    /// Accumulated phase-flip (Z) correction.
    pub z: bool,
}

impl PauliFrame {
    /// The identity frame (no correction pending).
    pub const IDENTITY: PauliFrame = PauliFrame { x: false, z: false };

    /// Accumulates the two classical bits of one teleportation.
    pub fn accumulate(self, x: bool, z: bool) -> PauliFrame {
        PauliFrame {
            x: self.x ^ x,
            z: self.z ^ z,
        }
    }

    /// Composes two frames (group operation of `Z₂ × Z₂`).
    pub fn compose(self, other: PauliFrame) -> PauliFrame {
        PauliFrame {
            x: self.x ^ other.x,
            z: self.z ^ other.z,
        }
    }

    /// Whether any correction is pending.
    pub fn is_identity(self) -> bool {
        !self.x && !self.z
    }
}

impl fmt::Display for PauliFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.x, self.z) {
            (false, false) => f.write_str("I"),
            (true, false) => f.write_str("X"),
            (false, true) => f.write_str("Z"),
            (true, true) => f.write_str("XZ"),
        }
    }
}

/// The classical packet that accompanies one EPR-pair half through the
/// network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PairMsg {
    /// ID assigned by the generating G node.
    pub pair_id: u64,
    /// Where this half is headed.
    pub destination: Coord,
    /// Where its entangled partner is headed (needed for endpoint
    /// purification pairing).
    pub partner_destination: Coord,
    /// Cumulative correction accumulated along the chain.
    pub correction: PauliFrame,
}

impl PairMsg {
    /// A fresh message at generation time.
    pub fn new(pair_id: u64, destination: Coord, partner_destination: Coord) -> Self {
        PairMsg {
            pair_id,
            destination,
            partner_destination,
            correction: PauliFrame::IDENTITY,
        }
    }

    /// Records one teleportation's classical bits into the cumulative
    /// correction.
    pub fn record_teleport(mut self, x: bool, z: bool) -> Self {
        self.correction = self.correction.accumulate(x, z);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_is_z2z2_group() {
        let a = PauliFrame { x: true, z: false };
        let b = PauliFrame { x: true, z: true };
        assert_eq!(a.compose(a), PauliFrame::IDENTITY, "involutive");
        assert_eq!(a.compose(b), PauliFrame { x: false, z: true });
        assert_eq!(a.compose(b), b.compose(a), "abelian");
        assert!(PauliFrame::IDENTITY.is_identity());
        assert!(!b.is_identity());
    }

    #[test]
    fn corrections_accumulate_and_cancel() {
        // Two X-corrections over a chain cancel: only the parity matters.
        let m = PairMsg::new(7, Coord::new(0, 0), Coord::new(3, 3))
            .record_teleport(true, false)
            .record_teleport(true, true);
        assert_eq!(m.correction, PauliFrame { x: false, z: true });
        assert_eq!(m.pair_id, 7);
    }

    #[test]
    fn display() {
        assert_eq!(PauliFrame::IDENTITY.to_string(), "I");
        assert_eq!(PauliFrame { x: true, z: true }.to_string(), "XZ");
        assert_eq!(PauliFrame { x: true, z: false }.to_string(), "X");
        assert_eq!(PauliFrame { x: false, z: true }.to_string(), "Z");
    }
}
