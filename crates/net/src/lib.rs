//! The EPR distribution network — **Sections 3 and 5** of Isailovic et al.
//!
//! This crate is the event-driven communication simulator the paper built
//! (in Java) to study resource contention. It models:
//!
//! * a **mesh of teleporter (T') nodes** with per-node teleporter pools
//!   split into X and Y sets (Figure 6), time-multiplexed among the
//!   channels crossing them,
//! * **generator (G) nodes** on every mesh edge, continuously producing
//!   link EPR pairs into bounded buffers ("virtual wires", Figure 5),
//! * **per-link, non-multiplexed storage** at each router (deadlock
//!   avoidance, Section 5.3),
//! * **queue purifiers** (Figure 14) at every endpoint site,
//! * **dimension-order routing** of chained pairs, with classical control
//!   messages carrying IDs and cumulative Pauli-frame corrections,
//! * a logical-communication lifecycle: open channel → stream pairs →
//!   endpoint purification → data teleport → gate.
//!
//! The machine-level layer (`qic-core`) drives the simulator through the
//! [`sim::Driver`] trait: it submits logical communications and reacts to
//! their completions, which is how the Home-Base and Mobile-Qubit layouts
//! of Figure 15 are expressed.
//!
//! # Example
//!
//! ```
//! use qic_net::prelude::*;
//!
//! // One communication corner-to-corner on a 4×4 mesh.
//! let config = NetConfig::small_test();
//! let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 3));
//! let report = NetworkSim::new(config).run(&mut driver);
//! assert_eq!(report.comms_completed, 1);
//! assert!(report.makespan.as_us_f64() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod message;
pub mod report;
pub mod resources;
pub mod sim;
pub mod topology;

/// Convenient glob-import surface: `use qic_net::prelude::*;`.
pub mod prelude {
    pub use crate::config::NetConfig;
    pub use crate::report::NetReport;
    pub use crate::sim::{CommId, Driver, NetworkSim, OneShotDriver, SimApi};
    pub use crate::topology::{Coord, Dir, Mesh};
}

pub use config::NetConfig;
pub use report::NetReport;
pub use sim::{CommId, Driver, NetworkSim, SimApi};
pub use topology::{Coord, Dir, Mesh};
