//! The EPR distribution network — **Sections 3 and 5** of Isailovic et al.
//!
//! This crate is the event-driven communication simulator the paper built
//! (in Java) to study resource contention. It models:
//!
//! * an **interconnect fabric of teleporter (T') nodes** — the paper's 2D
//!   [`topology::Mesh`], plus a wrap-around [`topology::Torus`] and a
//!   [`topology::Hypercube`] behind the [`topology::Topology`] trait —
//!   with per-node teleporter pools split into per-dimension sets
//!   (Figure 6), time-multiplexed among the channels crossing them,
//! * **generator (G) nodes** on every fabric link, continuously producing
//!   link EPR pairs into bounded buffers ("virtual wires", Figure 5),
//! * **per-link, non-multiplexed storage** at each router (deadlock
//!   avoidance, Section 5.3; cyclic fabrics add bubble flow control),
//! * **queue purifiers** (Figure 14) at every endpoint site,
//! * pluggable **routing policies** ([`routing::Router`]): the paper's
//!   dimension-order routing and a contention-aware minimal-adaptive
//!   policy, both deterministic,
//! * a logical-communication lifecycle: open channel → stream pairs →
//!   endpoint purification → data teleport → gate, with classical control
//!   messages carrying IDs and cumulative Pauli-frame corrections.
//!
//! The machine-level layer (`qic-core`) drives the simulator through the
//! [`sim::Driver`] trait: it submits logical communications and reacts to
//! their completions, which is how the Home-Base and Mobile-Qubit layouts
//! of Figure 15 are expressed.
//!
//! # Example
//!
//! ```
//! use qic_net::prelude::*;
//!
//! // One communication corner-to-corner on a 4×4 mesh.
//! let config = NetConfig::small_test();
//! let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 3));
//! let report = NetworkSim::new(config).run(&mut driver);
//! assert_eq!(report.comms_completed, 1);
//! assert!(report.makespan.as_us_f64() > 0.0);
//!
//! // The same traffic on a torus rides the wrap-around links instead.
//! let config = NetConfig::small_test().with_topology(TopologyKind::Torus);
//! let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 3));
//! let wrapped = NetworkSim::new(config).run(&mut driver);
//! assert!(wrapped.makespan < report.makespan);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod message;
pub mod report;
pub mod resources;
pub mod routing;
pub mod sim;
pub mod topology;

/// Convenient glob-import surface: `use qic_net::prelude::*;`.
pub mod prelude {
    pub use crate::config::NetConfig;
    pub use crate::report::{FaultStats, NetReport};
    pub use crate::routing::{DimensionOrder, MinimalAdaptive, Router, RoutingPolicy};
    pub use crate::sim::{CommId, CommOutcome, Driver, NetworkSim, OneShotDriver, SimApi};
    pub use crate::topology::{
        Coord, Dir, Fabric, Hypercube, Mesh, Port, Topology, TopologyKind, Torus,
    };
}

pub use config::NetConfig;
pub use report::{FaultStats, NetReport};
pub use routing::{Router, RoutingPolicy};
pub use sim::{CommId, CommOutcome, Driver, NetworkSim, SimApi};
pub use topology::{Coord, Dir, Fabric, Hypercube, Mesh, Port, Topology, TopologyKind, Torus};
