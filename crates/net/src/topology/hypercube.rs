//! A binary hypercube: log-diameter fabric for teleporter routers.

use serde::{Deserialize, Serialize};

use super::{Port, Topology};

/// A `dim`-dimensional binary hypercube (`2^dim` nodes).
///
/// Node `n`'s neighbour through port `i` is `n ^ (1 << i)`: ports are
/// address bits, distance is Hamming distance, and ascending-port
/// routing is the classic e-cube (dimension-order) walk. For site
/// addressing the cube is unfolded onto a `2^⌈dim/2⌉ × 2^⌊dim/2⌋` grid
/// in node-index order.
///
/// # Examples
///
/// ```
/// use qic_net::topology::{Hypercube, Port, Topology};
///
/// let cube = Hypercube::new(6);
/// assert_eq!((cube.nodes(), cube.width(), cube.height()), (64, 8, 8));
/// // Port i flips address bit i, so distance is the Hamming distance.
/// assert_eq!(cube.neighbor(0b000000, Port(4)), Some(0b010000));
/// assert_eq!(cube.distance(0b000000, 0b010110), 3);
/// // Each of the 6 dimensions is its own port class (teleporter set).
/// assert_eq!(cube.port_classes(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hypercube {
    dim: u32,
}

impl Hypercube {
    /// A hypercube of `dim` dimensions.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ dim ≤ 16` (the grid addressing is `u16`).
    pub fn new(dim: u32) -> Self {
        assert!(
            (1..=16).contains(&dim),
            "hypercube dimension must be 1..=16"
        );
        Hypercube { dim }
    }

    /// The cube's dimension (`log2` of the node count).
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// `node` with bit `port` squeezed out: a dense index among the
    /// `2^(dim−1)` links of one dimension.
    fn squeeze(node: usize, bit: u8) -> usize {
        let low = node & ((1 << bit) - 1);
        let high = (node >> (bit + 1)) << bit;
        high | low
    }
}

impl Topology for Hypercube {
    fn name(&self) -> &'static str {
        "hypercube"
    }

    fn width(&self) -> u16 {
        1u16 << self.dim.div_ceil(2)
    }

    fn height(&self) -> u16 {
        1u16 << (self.dim / 2)
    }

    fn ports_per_node(&self) -> usize {
        self.dim as usize
    }

    fn port_classes(&self) -> usize {
        self.dim as usize
    }

    fn port_class(&self, port: Port) -> usize {
        port.index()
    }

    fn neighbor(&self, node: usize, port: Port) -> Option<usize> {
        (u32::from(port.0) < self.dim).then(|| node ^ (1usize << port.0))
    }

    fn reverse_port(&self, _node: usize, port: Port) -> Port {
        // Flipping the same bit leads back.
        port
    }

    fn links(&self) -> usize {
        self.dim as usize * (self.nodes() / 2)
    }

    fn link_index(&self, node: usize, port: Port) -> usize {
        assert!(u32::from(port.0) < self.dim, "hypercube port out of range");
        usize::from(port.0) * (self.nodes() / 2) + Hypercube::squeeze(node, port.0)
    }

    fn distance(&self, a: usize, b: usize) -> u32 {
        (a ^ b).count_ones()
    }

    fn min_ports(&self, node: usize, dst: usize) -> Vec<Port> {
        let mut diff = node ^ dst;
        let mut ports = Vec::with_capacity(diff.count_ones() as usize);
        while diff != 0 {
            let bit = diff.trailing_zeros();
            ports.push(Port(bit as u8));
            diff &= diff - 1;
        }
        ports
    }

    fn min_port(&self, node: usize, dst: usize) -> Option<Port> {
        let diff = node ^ dst;
        (diff != 0).then(|| Port(diff.trailing_zeros() as u8))
    }

    fn diameter(&self) -> u32 {
        self.dim
    }

    fn bisection_width(&self) -> usize {
        self.nodes() / 2
    }

    fn dor_is_acyclic(&self) -> bool {
        // E-cube routing fixes bits in ascending order: acyclic.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::super::Coord;
    use super::*;

    #[test]
    fn grid_unfolding_covers_the_cube() {
        for dim in 1..=7u32 {
            let c = Hypercube::new(dim);
            assert_eq!(c.nodes(), 1 << dim);
            assert_eq!(
                usize::from(c.width()) * usize::from(c.height()),
                c.nodes(),
                "dim {dim}"
            );
            for node in 0..c.nodes() {
                assert_eq!(c.node_index(c.coord_of(node)), node);
            }
        }
        let c = Hypercube::new(4);
        assert_eq!((c.width(), c.height()), (4, 4));
        assert_eq!(c.node_index(Coord::new(3, 2)), 11);
    }

    #[test]
    fn neighbors_flip_one_bit() {
        let c = Hypercube::new(5);
        for node in 0..c.nodes() {
            for p in 0..5u8 {
                let n = c.neighbor(node, Port(p)).unwrap();
                assert_eq!(c.distance(node, n), 1);
                assert_eq!(n ^ node, 1 << p);
                assert_eq!(c.neighbor(n, c.reverse_port(node, Port(p))), Some(node));
            }
            assert_eq!(c.neighbor(node, Port(5)), None);
        }
    }

    #[test]
    fn link_indices_are_dense_and_symmetric() {
        let c = Hypercube::new(4);
        assert_eq!(c.links(), 32);
        let mut hits = vec![0u32; c.links()];
        for node in 0..c.nodes() {
            for p in 0..4u8 {
                let i = c.link_index(node, Port(p));
                hits[i] += 1;
                let n = c.neighbor(node, Port(p)).unwrap();
                assert_eq!(i, c.link_index(n, c.reverse_port(node, Port(p))));
            }
        }
        assert!(hits.iter().all(|&h| h == 2), "{hits:?}");
    }

    #[test]
    fn min_ports_are_ascending_set_bits() {
        let c = Hypercube::new(6);
        let ports = c.min_ports(0b000000, 0b101001);
        assert_eq!(ports, vec![Port(0), Port(3), Port(5)]);
        assert!(c.min_ports(7, 7).is_empty());
        assert_eq!(c.distance(0b000000, 0b101001), 3);
    }

    #[test]
    fn metadata() {
        let c = Hypercube::new(6);
        assert_eq!(c.diameter(), 6);
        assert_eq!(c.bisection_width(), 32);
        assert_eq!(c.dim(), 6);
        assert!(c.dor_is_acyclic());
        assert_eq!(c.name(), "hypercube");
    }

    #[test]
    #[should_panic(expected = "dimension must be 1..=16")]
    fn oversized_cube_rejected() {
        let _ = Hypercube::new(17);
    }
}
