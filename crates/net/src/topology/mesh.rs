//! The paper's fabric: a rectangular mesh with dimension-order routes.

use serde::{Deserialize, Serialize};

use super::{Coord, Dir, Port, Topology};

/// An undirected mesh edge, identified by its lower-left endpoint and
/// orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId {
    /// The endpoint with the smaller coordinate.
    pub base: Coord,
    /// `true` for a horizontal (x-direction) edge.
    pub horizontal: bool,
}

/// A rectangular mesh of T' nodes — the fabric every figure of the
/// paper is computed on.
///
/// # Examples
///
/// ```
/// use qic_net::topology::{Coord, Mesh, Port, Topology};
///
/// let mesh = Mesh::new(4, 4);
/// assert_eq!(mesh.ports_per_node(), 4);
/// // Port 0 is East; the border ports are unwired.
/// assert_eq!(mesh.neighbor(0, Port(0)), Some(1));
/// assert_eq!(mesh.neighbor(0, Port(1)), None);
/// // Distance is Manhattan distance.
/// let (a, b) = (mesh.node_index(Coord::new(0, 0)), mesh.node_index(Coord::new(3, 2)));
/// assert_eq!(Topology::distance(&mesh, a, b), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Mesh {
    /// A `width × height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh must be non-empty");
        Mesh { width, height }
    }

    /// Mesh width.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Mesh height.
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        usize::from(self.width) * usize::from(self.height)
    }

    /// Number of undirected edges.
    pub fn edges(&self) -> usize {
        let w = usize::from(self.width);
        let h = usize::from(self.height);
        (w - 1) * h + w * (h - 1)
    }

    /// Whether a coordinate lies on the mesh.
    pub fn contains(&self, c: Coord) -> bool {
        c.x < self.width && c.y < self.height
    }

    /// Dense index of a node.
    pub fn node_index(&self, c: Coord) -> usize {
        usize::from(c.y) * usize::from(self.width) + usize::from(c.x)
    }

    /// The neighbour of `c` in direction `d`, if on the mesh.
    pub fn step(&self, c: Coord, d: Dir) -> Option<Coord> {
        let next = match d {
            Dir::East => Coord {
                x: c.x.checked_add(1)?,
                y: c.y,
            },
            Dir::West => Coord {
                x: c.x.checked_sub(1)?,
                y: c.y,
            },
            Dir::North => Coord {
                x: c.x,
                y: c.y.checked_add(1)?,
            },
            Dir::South => Coord {
                x: c.x,
                y: c.y.checked_sub(1)?,
            },
        };
        self.contains(next).then_some(next)
    }

    /// The edge crossed when stepping from `c` in direction `d`.
    ///
    /// # Panics
    ///
    /// Panics if the step leaves the mesh.
    pub fn edge(&self, c: Coord, d: Dir) -> EdgeId {
        let next = self.step(c, d).expect("edge step must stay on the mesh");
        let base = if (next.x, next.y) < (c.x, c.y) {
            next
        } else {
            c
        };
        EdgeId {
            base,
            horizontal: d.is_x(),
        }
    }

    /// Dense index of an edge (horizontal edges first, row-major).
    pub fn edge_index(&self, e: EdgeId) -> usize {
        let w = usize::from(self.width);
        let h = usize::from(self.height);
        if e.horizontal {
            usize::from(e.base.y) * (w - 1) + usize::from(e.base.x)
        } else {
            (w - 1) * h + usize::from(e.base.y) * w + usize::from(e.base.x)
        }
    }

    /// The dimension-order (X then Y) route from `from` to `to`: the
    /// sequence of directions to follow. Empty when `from == to`.
    pub fn route(&self, from: Coord, to: Coord) -> Vec<Dir> {
        assert!(
            self.contains(from) && self.contains(to),
            "route endpoints must be on the mesh"
        );
        let mut dirs = Vec::with_capacity(from.manhattan(to) as usize);
        let dx = i32::from(to.x) - i32::from(from.x);
        let dy = i32::from(to.y) - i32::from(from.y);
        for _ in 0..dx.abs() {
            dirs.push(if dx > 0 { Dir::East } else { Dir::West });
        }
        for _ in 0..dy.abs() {
            dirs.push(if dy > 0 { Dir::North } else { Dir::South });
        }
        dirs
    }

    /// The node sequence of a route, including both endpoints.
    pub fn route_nodes(&self, from: Coord, to: Coord) -> Vec<Coord> {
        let mut nodes = vec![from];
        let mut at = from;
        for d in self.route(from, to) {
            at = self.step(at, d).expect("route stays on mesh");
            nodes.push(at);
        }
        nodes
    }

    /// Iterates over all node coordinates in row-major order.
    pub fn iter_nodes(&self) -> impl Iterator<Item = Coord> + '_ {
        let w = self.width;
        (0..self.height).flat_map(move |y| (0..w).map(move |x| Coord { x, y }))
    }
}

impl Topology for Mesh {
    fn name(&self) -> &'static str {
        "mesh"
    }

    fn width(&self) -> u16 {
        self.width
    }

    fn height(&self) -> u16 {
        self.height
    }

    fn ports_per_node(&self) -> usize {
        4
    }

    fn port_classes(&self) -> usize {
        2
    }

    fn port_class(&self, port: Port) -> usize {
        usize::from(port.0 >= 2)
    }

    fn neighbor(&self, node: usize, port: Port) -> Option<usize> {
        let c = self.coord_of(node);
        let d = Dir::from_port(port)?;
        self.step(c, d).map(|n| Mesh::node_index(self, n))
    }

    fn reverse_port(&self, _node: usize, port: Port) -> Port {
        // E↔W and N↔S swap: ports are paired by the low bit.
        Port(port.0 ^ 1)
    }

    fn links(&self) -> usize {
        self.edges()
    }

    fn link_index(&self, node: usize, port: Port) -> usize {
        let c = self.coord_of(node);
        let d = Dir::from_port(port).expect("mesh ports are 0..4");
        self.edge_index(self.edge(c, d))
    }

    fn distance(&self, a: usize, b: usize) -> u32 {
        self.coord_of(a).manhattan(self.coord_of(b))
    }

    fn min_ports(&self, node: usize, dst: usize) -> Vec<Port> {
        let at = self.coord_of(node);
        let to = self.coord_of(dst);
        let mut ports = Vec::with_capacity(2);
        if to.x > at.x {
            ports.push(Dir::East.port());
        } else if to.x < at.x {
            ports.push(Dir::West.port());
        }
        if to.y > at.y {
            ports.push(Dir::North.port());
        } else if to.y < at.y {
            ports.push(Dir::South.port());
        }
        ports
    }

    fn min_port(&self, node: usize, dst: usize) -> Option<Port> {
        // X first (East/West are the low ports), then Y — the same
        // ascending order `min_ports` lists.
        let at = self.coord_of(node);
        let to = self.coord_of(dst);
        if to.x > at.x {
            Some(Dir::East.port())
        } else if to.x < at.x {
            Some(Dir::West.port())
        } else if to.y > at.y {
            Some(Dir::North.port())
        } else if to.y < at.y {
            Some(Dir::South.port())
        } else {
            None
        }
    }

    fn diameter(&self) -> u32 {
        u32::from(self.width - 1) + u32::from(self.height - 1)
    }

    fn bisection_width(&self) -> usize {
        // A balanced cut must split an even dimension; it severs one
        // link per row (or column) of the other dimension. With both
        // dimensions odd no perfectly balanced cut exists; the
        // near-balanced min(w, h) is reported.
        let w = usize::from(self.width);
        let h = usize::from(self.height);
        match (w % 2 == 0, h % 2 == 0) {
            (true, true) => w.min(h),
            (true, false) => h,
            (false, true) => w,
            (false, false) => w.min(h),
        }
    }

    fn dor_is_acyclic(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let m = Mesh::new(4, 3);
        assert_eq!(m.nodes(), 12);
        assert_eq!(m.edges(), 3 * 3 + 4 * 2);
        assert_eq!(m.iter_nodes().count(), 12);
        assert_eq!(m.links(), m.edges());
    }

    #[test]
    fn node_indices_are_dense_and_unique() {
        let m = Mesh::new(5, 7);
        let mut seen = vec![false; m.nodes()];
        for c in m.iter_nodes() {
            let i = m.node_index(c);
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn edge_indices_are_dense_and_unique() {
        let m = Mesh::new(4, 4);
        let mut seen = vec![false; m.edges()];
        for c in m.iter_nodes() {
            for d in [Dir::East, Dir::North] {
                if m.step(c, d).is_some() {
                    let i = m.edge_index(m.edge(c, d));
                    assert!(!seen[i], "duplicate edge index {i}");
                    seen[i] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn edges_are_direction_symmetric() {
        let m = Mesh::new(4, 4);
        let c = Coord::new(1, 1);
        let e_east = m.edge(c, Dir::East);
        let e_back = m.edge(Coord::new(2, 1), Dir::West);
        assert_eq!(e_east, e_back);
        let e_north = m.edge(c, Dir::North);
        let e_south = m.edge(Coord::new(1, 2), Dir::South);
        assert_eq!(e_north, e_south);
    }

    #[test]
    fn steps_respect_borders() {
        let m = Mesh::new(3, 3);
        assert_eq!(m.step(Coord::new(0, 0), Dir::West), None);
        assert_eq!(m.step(Coord::new(0, 0), Dir::South), None);
        assert_eq!(m.step(Coord::new(2, 2), Dir::East), None);
        assert_eq!(m.step(Coord::new(1, 1), Dir::East), Some(Coord::new(2, 1)));
    }

    #[test]
    fn dimension_order_routes_x_first() {
        let m = Mesh::new(8, 8);
        let r = m.route(Coord::new(1, 1), Coord::new(4, 6));
        assert_eq!(r.len(), 8);
        assert!(r[..3].iter().all(|d| *d == Dir::East));
        assert!(r[3..].iter().all(|d| *d == Dir::North));
        // At most one turn.
        let turns = r.windows(2).filter(|w| w[0].is_x() != w[1].is_x()).count();
        assert!(turns <= 1);
    }

    #[test]
    fn route_nodes_connect() {
        let m = Mesh::new(8, 8);
        let nodes = m.route_nodes(Coord::new(7, 0), Coord::new(0, 3));
        assert_eq!(nodes.len(), 11);
        assert_eq!(nodes[0], Coord::new(7, 0));
        assert_eq!(*nodes.last().unwrap(), Coord::new(0, 3));
        for w in nodes.windows(2) {
            assert_eq!(w[0].manhattan(w[1]), 1);
        }
    }

    #[test]
    fn trait_neighbors_match_steps() {
        let m = Mesh::new(4, 3);
        for node in 0..m.nodes() {
            let c = m.coord_of(node);
            for port in 0..4u8 {
                let d = Dir::from_port(Port(port)).unwrap();
                let via_step = m.step(c, d).map(|n| m.node_index(n));
                assert_eq!(m.neighbor(node, Port(port)), via_step);
                if let Some(n) = via_step {
                    let back = m.reverse_port(node, Port(port));
                    assert_eq!(m.neighbor(n, back), Some(node));
                    assert_eq!(m.link_index(node, Port(port)), m.link_index(n, back));
                }
            }
        }
    }

    #[test]
    fn min_ports_realise_manhattan_distance() {
        let m = Mesh::new(6, 5);
        let (a, b) = (
            m.node_index(Coord::new(5, 0)),
            m.node_index(Coord::new(1, 4)),
        );
        assert_eq!(Topology::distance(&m, a, b), 8);
        // West (port 1) sorts before North (port 2).
        assert_eq!(m.min_ports(a, b), vec![Port(1), Port(2)]);
        assert!(m.min_ports(a, a).is_empty());
    }

    #[test]
    fn metadata() {
        let m = Mesh::new(8, 8);
        assert_eq!(m.diameter(), 14);
        assert_eq!(m.bisection_width(), 8);
        assert!(m.dor_is_acyclic());
        assert_eq!(m.name(), "mesh");
        assert_eq!(Mesh::new(5, 4).bisection_width(), 5);
        assert_eq!(Mesh::new(4, 5).bisection_width(), 5);
        assert_eq!(Mesh::new(5, 5).bisection_width(), 5);
        assert_eq!(m.port_classes(), 2);
        assert_eq!(m.port_class(Dir::West.port()), 0);
        assert_eq!(m.port_class(Dir::South.port()), 1);
    }
}
