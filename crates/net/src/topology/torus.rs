//! A 2D torus: the mesh with wrap-around links in each dimension.

use serde::{Deserialize, Serialize};

use super::{Coord, Dir, Port, Topology};

/// A `width × height` torus.
///
/// Every dimension of extent ≥ 2 wraps: node `(w−1, y)` has an East
/// link back to `(0, y)`. A dimension of extent 2 therefore carries
/// **two parallel links** between its node pairs (the standard radix-2
/// torus), and each node owns its own East and North links so link
/// indices stay dense. Wrap-around halves the diameter and doubles the
/// bisection width relative to the mesh at the same node count.
///
/// # Examples
///
/// ```
/// use qic_net::topology::{Coord, Port, Topology, Torus};
///
/// let t = Torus::new(8, 8);
/// // Corner to corner is one hop in each dimension via the wraps.
/// let (a, b) = (t.node_index(Coord::new(0, 0)), t.node_index(Coord::new(7, 7)));
/// assert_eq!(t.distance(a, b), 2);
/// // Port 1 is West: node (0,0) wraps to (7,0).
/// assert_eq!(t.neighbor(a, Port(1)), Some(t.node_index(Coord::new(7, 0))));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torus {
    width: u16,
    height: u16,
}

impl Torus {
    /// A `width × height` torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the torus has fewer than
    /// two nodes.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "torus must be non-empty");
        assert!(
            usize::from(width) * usize::from(height) >= 2,
            "a torus needs at least two nodes"
        );
        Torus { width, height }
    }

    fn wired_x(&self) -> bool {
        self.width >= 2
    }

    fn wired_y(&self) -> bool {
        self.height >= 2
    }

    /// Ring distance along one dimension of extent `len`.
    fn ring_dist(a: u16, b: u16, len: u16) -> u32 {
        let d = u32::from(a.abs_diff(b));
        d.min(u32::from(len) - d)
    }

    /// One position around a ring of extent `len` (`delta` ∈ {+1, −1}).
    fn ring_step(at: u16, len: u16, delta: i32) -> u16 {
        (((i64::from(at) + i64::from(delta)) + i64::from(len)) % i64::from(len)) as u16
    }

    /// Steps one hop around the torus (always wired for extent ≥ 2).
    fn step(&self, c: Coord, d: Dir) -> Option<Coord> {
        let (w, h) = (self.width, self.height);
        match d {
            Dir::East if self.wired_x() => Some(Coord::new(Torus::ring_step(c.x, w, 1), c.y)),
            Dir::West if self.wired_x() => Some(Coord::new(Torus::ring_step(c.x, w, -1), c.y)),
            Dir::North if self.wired_y() => Some(Coord::new(c.x, Torus::ring_step(c.y, h, 1))),
            Dir::South if self.wired_y() => Some(Coord::new(c.x, Torus::ring_step(c.y, h, -1))),
            _ => None,
        }
    }
}

impl Topology for Torus {
    fn name(&self) -> &'static str {
        "torus"
    }

    fn width(&self) -> u16 {
        self.width
    }

    fn height(&self) -> u16 {
        self.height
    }

    fn ports_per_node(&self) -> usize {
        4
    }

    fn port_classes(&self) -> usize {
        2
    }

    fn port_class(&self, port: Port) -> usize {
        usize::from(port.0 >= 2)
    }

    fn neighbor(&self, node: usize, port: Port) -> Option<usize> {
        let d = Dir::from_port(port)?;
        self.step(self.coord_of(node), d)
            .map(|c| self.node_index(c))
    }

    fn reverse_port(&self, _node: usize, port: Port) -> Port {
        Port(port.0 ^ 1)
    }

    fn links(&self) -> usize {
        let n = self.nodes();
        let x = if self.wired_x() { n } else { 0 };
        let y = if self.wired_y() { n } else { 0 };
        x + y
    }

    fn link_index(&self, node: usize, port: Port) -> usize {
        // Each node owns its East link (index = node) and its North link
        // (index = x_links + node); West/South cross the neighbour's.
        let x_links = if self.wired_x() { self.nodes() } else { 0 };
        let d = Dir::from_port(port).expect("torus ports are 0..4");
        let owner = match d {
            Dir::East | Dir::North => node,
            Dir::West | Dir::South => self
                .neighbor(node, port)
                .expect("wired dimensions always wrap"),
        };
        match d {
            Dir::East | Dir::West => {
                assert!(self.wired_x(), "no X links on a width-1 torus");
                owner
            }
            Dir::North | Dir::South => {
                assert!(self.wired_y(), "no Y links on a height-1 torus");
                x_links + owner
            }
        }
    }

    fn distance(&self, a: usize, b: usize) -> u32 {
        let (ca, cb) = (self.coord_of(a), self.coord_of(b));
        Torus::ring_dist(ca.x, cb.x, self.width) + Torus::ring_dist(ca.y, cb.y, self.height)
    }

    fn min_ports(&self, node: usize, dst: usize) -> Vec<Port> {
        let at = self.coord_of(node);
        let to = self.coord_of(dst);
        let mut ports = Vec::with_capacity(2);
        if at.x != to.x {
            let w = u32::from(self.width);
            let east = (u32::from(to.x) + w - u32::from(at.x)) % w;
            let west = w - east;
            // Both directions are minimal on an even ring's antipode.
            if east <= west {
                ports.push(Dir::East.port());
            }
            if west <= east {
                ports.push(Dir::West.port());
            }
        }
        if at.y != to.y {
            let h = u32::from(self.height);
            let north = (u32::from(to.y) + h - u32::from(at.y)) % h;
            let south = h - north;
            if north <= south {
                ports.push(Dir::North.port());
            }
            if south <= north {
                ports.push(Dir::South.port());
            }
        }
        ports
    }

    fn min_port(&self, node: usize, dst: usize) -> Option<Port> {
        let at = self.coord_of(node);
        let to = self.coord_of(dst);
        if at.x != to.x {
            let w = u32::from(self.width);
            let east = (u32::from(to.x) + w - u32::from(at.x)) % w;
            // East (port 0) wins antipodal ties, as in `min_ports`.
            return Some(if east <= w - east {
                Dir::East.port()
            } else {
                Dir::West.port()
            });
        }
        if at.y != to.y {
            let h = u32::from(self.height);
            let north = (u32::from(to.y) + h - u32::from(at.y)) % h;
            return Some(if north <= h - north {
                Dir::North.port()
            } else {
                Dir::South.port()
            });
        }
        None
    }

    fn diameter(&self) -> u32 {
        u32::from(self.width / 2) + u32::from(self.height / 2)
    }

    fn bisection_width(&self) -> usize {
        // Cutting a ring severs two links per ring crossed; a balanced
        // cut needs an even extent in the cut dimension. Both odd falls
        // back to the near-balanced 2·min(w, h).
        let w = usize::from(self.width);
        let h = usize::from(self.height);
        let mut candidates = Vec::with_capacity(2);
        if self.wired_x() && w % 2 == 0 {
            candidates.push(2 * h);
        }
        if self.wired_y() && h % 2 == 0 {
            candidates.push(2 * w);
        }
        candidates.into_iter().min().unwrap_or(2 * w.min(h))
    }

    fn dor_is_acyclic(&self) -> bool {
        // Wrap links close ring cycles in the channel-dependency graph;
        // the simulator compensates with bubble flow control.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraparound_neighbors() {
        let t = Torus::new(4, 3);
        let corner = t.node_index(Coord::new(3, 2));
        assert_eq!(
            t.neighbor(corner, Dir::East.port()),
            Some(t.node_index(Coord::new(0, 2)))
        );
        assert_eq!(
            t.neighbor(corner, Dir::North.port()),
            Some(t.node_index(Coord::new(3, 0)))
        );
        // Every port is wired on a ≥2×≥2 torus.
        for node in 0..t.nodes() {
            for p in 0..4u8 {
                assert!(t.neighbor(node, Port(p)).is_some());
            }
        }
    }

    #[test]
    fn link_indices_are_dense_and_symmetric() {
        let t = Torus::new(4, 4);
        assert_eq!(t.links(), 32);
        let mut hits = vec![0u32; t.links()];
        for node in 0..t.nodes() {
            for p in 0..4u8 {
                let port = Port(p);
                let i = t.link_index(node, port);
                hits[i] += 1;
                let n = t.neighbor(node, port).unwrap();
                assert_eq!(i, t.link_index(n, t.reverse_port(node, port)));
            }
        }
        // Each undirected link is crossed by exactly two (node, port)
        // pairs... except radix-2 rings, absent on a 4×4.
        assert!(hits.iter().all(|&c| c == 2), "{hits:?}");
    }

    #[test]
    fn radix_two_rings_carry_parallel_links() {
        let t = Torus::new(2, 3);
        // X links: one East link per node (parallel pairs); Y links: one
        // North link per node.
        assert_eq!(t.links(), 12);
        let a = t.node_index(Coord::new(0, 0));
        let b = t.node_index(Coord::new(1, 0));
        // a's East link and b's East link join the same nodes but are
        // distinct channels.
        assert_ne!(
            t.link_index(a, Dir::East.port()),
            t.link_index(b, Dir::East.port())
        );
        // Going West from a crosses b's East link.
        assert_eq!(
            t.link_index(a, Dir::West.port()),
            t.link_index(b, Dir::East.port())
        );
    }

    #[test]
    fn ring_distance() {
        let t = Torus::new(6, 4);
        let d = |a: (u16, u16), b: (u16, u16)| {
            t.distance(
                t.node_index(Coord::new(a.0, a.1)),
                t.node_index(Coord::new(b.0, b.1)),
            )
        };
        assert_eq!(d((0, 0), (5, 0)), 1, "wrap beats walking the row");
        assert_eq!(d((0, 0), (3, 0)), 3, "antipode either way");
        assert_eq!(d((0, 0), (3, 2)), 5);
        assert_eq!(d((2, 1), (2, 1)), 0);
    }

    #[test]
    fn min_ports_take_the_short_way_and_split_ties() {
        let t = Torus::new(6, 6);
        let at = t.node_index(Coord::new(0, 0));
        // 5 east or 1 west: west only.
        assert_eq!(
            t.min_ports(at, t.node_index(Coord::new(5, 0))),
            vec![Dir::West.port()]
        );
        // Antipode: both x ports minimal.
        assert_eq!(
            t.min_ports(at, t.node_index(Coord::new(3, 0))),
            vec![Dir::East.port(), Dir::West.port()]
        );
        // Mixed: east then both y ports at the y-antipode.
        assert_eq!(
            t.min_ports(at, t.node_index(Coord::new(1, 3))),
            vec![Dir::East.port(), Dir::North.port(), Dir::South.port()]
        );
    }

    #[test]
    fn metadata() {
        let t = Torus::new(8, 8);
        assert_eq!(t.diameter(), 8);
        assert_eq!(t.bisection_width(), 16);
        assert!(!t.dor_is_acyclic());
        assert_eq!(t.name(), "torus");
        assert_eq!(Torus::new(1, 6).links(), 6);
        assert_eq!(Torus::new(1, 6).diameter(), 3);
        // A 1×6 ring's balanced cut severs two links.
        assert_eq!(Torus::new(1, 6).bisection_width(), 2);
        assert_eq!(Torus::new(5, 5).bisection_width(), 10);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn degenerate_torus_rejected() {
        let _ = Torus::new(1, 1);
    }
}
