//! Interconnect fabrics — **Section 3.2**, generalised beyond the paper.
//!
//! The paper computes every result on a single 2D mesh with
//! dimension-order routing. This module abstracts the fabric behind the
//! [`Topology`] trait so the same event-driven simulator can answer
//! "what if it weren't a mesh?": three concrete fabrics ship today
//! ([`Mesh`], wrap-around [`Torus`], [`Hypercube`]), and the
//! [`Fabric`] enum dispatches among them for configuration-driven use.
//!
//! A topology's vocabulary:
//!
//! * **nodes** are dense indices `0..nodes()`, addressed externally by a
//!   grid [`Coord`] (`width() × height()` sites, row-major) so qubit
//!   placement works identically on every fabric;
//! * **ports** ([`Port`]) are a node's link endpoints, `0..ports_per_node()`
//!   — the mesh's four compass directions generalise to "which link";
//! * **port classes** group ports into dimension sets (the X/Y teleporter
//!   sets of Figure 6); a hop that changes class pays the router's turn
//!   penalty and crosses into a different teleporter pool;
//! * **links** are undirected edges with dense indices `0..links()`, each
//!   carrying one G-node virtual wire.
//!
//! # Examples
//!
//! Three fabrics at a matched 64-node scale:
//!
//! ```
//! use qic_net::topology::{Hypercube, Mesh, Topology, Torus};
//!
//! let mesh = Mesh::new(8, 8);
//! let torus = Torus::new(8, 8);
//! let cube = Hypercube::new(6);
//! assert_eq!((mesh.nodes(), torus.nodes(), cube.nodes()), (64, 64, 64));
//! // Wrap-around halves the diameter; the hypercube beats both.
//! assert_eq!((mesh.diameter(), torus.diameter(), cube.diameter()), (14, 8, 6));
//! // Bisection width doubles from mesh to torus and doubles again to
//! // the hypercube, at the price of more ports per node.
//! assert_eq!(
//!     (mesh.bisection_width(), torus.bisection_width(), cube.bisection_width()),
//!     (8, 16, 32)
//! );
//! assert_eq!(
//!     (mesh.ports_per_node(), torus.ports_per_node(), cube.ports_per_node()),
//!     (4, 4, 6)
//! );
//! ```

mod hypercube;
mod mesh;
mod torus;

pub use hypercube::Hypercube;
pub use mesh::{EdgeId, Mesh};
pub use torus::Torus;

use std::fmt;

use serde::{Deserialize, Serialize};

/// A site on the fabric's addressing grid (column `x`, row `y`).
///
/// Every fabric — including the hypercube — exposes a rectangular
/// `width × height` site grid so placement layers (e.g. the snake
/// placement in `qic-core`) are topology-agnostic; [`Topology::node_index`]
/// maps a coordinate onto the fabric's dense node index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    /// Column index.
    pub x: u16,
    /// Row index.
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate.
    pub fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance to another coordinate.
    pub fn manhattan(self, other: Coord) -> u32 {
        u32::from(self.x.abs_diff(other.x)) + u32::from(self.y.abs_diff(other.y))
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// A router port index: which of a node's links a hop uses.
///
/// Ports are dense per topology (`0..`[`Topology::ports_per_node`]). On
/// the mesh and torus, ports `0..4` are the compass directions (see
/// [`Dir`]); on a hypercube, port `i` flips address bit `i`. Fabric-
/// agnostic code — the simulator, resource indexing, routing policies —
/// speaks ports; [`Dir`] survives as the mesh-specific vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Port(pub u8);

impl Port {
    /// The port as a dense array index.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A hop direction on the mesh or torus (the four compass ports).
///
/// This is mesh/torus-specific vocabulary kept for readability and
/// backwards compatibility; fabric-agnostic code uses [`Port`] indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dir {
    /// +x.
    East,
    /// −x.
    West,
    /// +y.
    North,
    /// −y.
    South,
}

impl Dir {
    /// Whether this direction moves along the X dimension.
    pub fn is_x(self) -> bool {
        matches!(self, Dir::East | Dir::West)
    }

    /// The opposite direction.
    pub fn opposite(self) -> Dir {
        match self {
            Dir::East => Dir::West,
            Dir::West => Dir::East,
            Dir::North => Dir::South,
            Dir::South => Dir::North,
        }
    }

    /// Index 0..4 for dense per-direction arrays.
    pub fn index(self) -> usize {
        match self {
            Dir::East => 0,
            Dir::West => 1,
            Dir::North => 2,
            Dir::South => 3,
        }
    }

    /// The equivalent fabric port (`East=0, West=1, North=2, South=3`).
    pub fn port(self) -> Port {
        Port(self.index() as u8)
    }

    /// The direction for a mesh/torus port, if in range.
    pub fn from_port(port: Port) -> Option<Dir> {
        match port.0 {
            0 => Some(Dir::East),
            1 => Some(Dir::West),
            2 => Some(Dir::North),
            3 => Some(Dir::South),
            _ => None,
        }
    }
}

impl From<Dir> for Port {
    fn from(d: Dir) -> Port {
        d.port()
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dir::East => "E",
            Dir::West => "W",
            Dir::North => "N",
            Dir::South => "S",
        };
        f.write_str(s)
    }
}

/// An interconnect fabric: nodes, ports, links, distances and routing
/// metadata.
///
/// Implementations must be **static** (the wiring never changes during a
/// simulation) and **consistent**:
///
/// * `neighbor(neighbor(n, p), reverse_port(n, p)) == Some(n)` for every
///   wired port `p`;
/// * `link_index(n, p) == link_index(neighbor(n, p), reverse_port(n, p))`
///   and link indices are dense in `0..links()`;
/// * `distance` is a metric realised by the port graph, and
///   [`Topology::min_ports`] returns exactly the ports whose hop strictly
///   decreases it (so any greedy walk over `min_ports` is a minimal,
///   loop-free route).
///
/// The trait is object-safe: the simulator is generic over a concrete
/// topology for zero-cost dispatch, while routing policies take
/// `&dyn Topology` so one [`crate::routing::Router`] works on every
/// fabric.
///
/// # Examples
///
/// Greedily walking [`Topology::min_ports`] always yields a minimal
/// route:
///
/// ```
/// use qic_net::topology::{Hypercube, Topology};
///
/// let cube = Hypercube::new(4);
/// let (src, dst) = (0b0000, 0b1011);
/// let mut at = src;
/// let mut hops = 0;
/// while at != dst {
///     let port = cube.min_ports(at, dst)[0]; // any minimal port works
///     at = cube.neighbor(at, port).unwrap();
///     hops += 1;
/// }
/// assert_eq!(hops, cube.distance(src, dst)); // = popcount(0b1011) = 3
/// ```
pub trait Topology {
    /// Short lowercase name for reports and campaign labels.
    fn name(&self) -> &'static str;

    /// Width of the site-addressing grid.
    fn width(&self) -> u16;

    /// Height of the site-addressing grid.
    fn height(&self) -> u16;

    /// Ports per node (the fabric's radix; counts unwired border ports).
    fn ports_per_node(&self) -> usize;

    /// Number of port classes (dimension sets sharing one teleporter
    /// pool; the mesh's X and Y sets of Figure 6).
    fn port_classes(&self) -> usize;

    /// The class of a port, in `0..port_classes()`.
    fn port_class(&self, port: Port) -> usize;

    /// The node reached through `port`, or `None` if the port is unwired
    /// (a mesh border).
    fn neighbor(&self, node: usize, port: Port) -> Option<usize>;

    /// The port on `neighbor(node, port)` that leads back to `node`.
    ///
    /// Only meaningful when the port is wired.
    fn reverse_port(&self, node: usize, port: Port) -> Port;

    /// Number of undirected links (one G-node virtual wire each).
    fn links(&self) -> usize;

    /// Dense index of the undirected link crossed by `(node, port)`.
    ///
    /// Both endpoints of a link agree on its index.
    ///
    /// # Panics
    ///
    /// May panic if the port is unwired.
    fn link_index(&self, node: usize, port: Port) -> usize;

    /// Hop distance between two nodes.
    fn distance(&self, a: usize, b: usize) -> u32;

    /// The ports at `node` whose hop strictly decreases the distance to
    /// `dst`, in ascending port order. Empty exactly when `node == dst`.
    fn min_ports(&self, node: usize, dst: usize) -> Vec<Port>;

    /// Maximum hop distance between any node pair.
    fn diameter(&self) -> u32;

    /// Links cut by the best balanced bisection of the fabric (exact for
    /// even dimensions; documented approximation otherwise).
    fn bisection_width(&self) -> usize;

    /// Whether ascending-port dimension-order routing is cycle-free in
    /// the channel-dependency graph (true for mesh and hypercube; false
    /// for the torus, whose wrap links close rings). Fabrics that return
    /// `false` make the simulator apply bubble flow control at
    /// ring-entry hops.
    fn dor_is_acyclic(&self) -> bool;

    // --- provided helpers -------------------------------------------------

    /// The lowest-numbered minimal port toward `dst` (the
    /// dimension-order choice), or `None` exactly when `node == dst`.
    ///
    /// Semantically `min_ports(node, dst).first().copied()`; concrete
    /// fabrics override it to answer without building the full list, so
    /// oblivious routing costs no allocation per hop.
    fn min_port(&self, node: usize, dst: usize) -> Option<Port> {
        self.min_ports(node, dst).first().copied()
    }

    /// Number of nodes (`width × height`).
    fn nodes(&self) -> usize {
        usize::from(self.width()) * usize::from(self.height())
    }

    /// Whether a coordinate lies on the addressing grid.
    fn contains(&self, c: Coord) -> bool {
        c.x < self.width() && c.y < self.height()
    }

    /// Dense node index of a coordinate (row-major).
    fn node_index(&self, c: Coord) -> usize {
        usize::from(c.y) * usize::from(self.width()) + usize::from(c.x)
    }

    /// The coordinate of a dense node index (row-major).
    fn coord_of(&self, node: usize) -> Coord {
        let w = usize::from(self.width());
        Coord::new((node % w) as u16, (node / w) as u16)
    }

    // --- fault-awareness hooks (healthy defaults) -----------------------

    /// Whether this topology is a fault layer (a degraded wrapper such
    /// as `qic-fault`'s `DegradedFabric`). Healthy fabrics return
    /// `false`; the simulator attaches fault statistics to its report
    /// only when this returns `true`, so healthy runs stay byte-identical.
    fn fault_aware(&self) -> bool {
        false
    }

    /// Whether a route from `a` to `b` exists. Healthy fabrics are
    /// connected, so the default is `true`; a degraded wrapper returns
    /// `false` for dead endpoints or severed components, and the
    /// simulator then *drops* the communication (a structured
    /// `Unreachable` outcome) instead of hanging.
    fn is_reachable(&self, a: usize, b: usize) -> bool {
        let _ = (a, b);
        true
    }

    /// The hop distance the *healthy* fabric would report. Degraded
    /// wrappers delegate to their base fabric; the simulator uses the
    /// ratio of routed hops to this value as the route-inflation signal.
    fn healthy_distance(&self, a: usize, b: usize) -> u32 {
        self.distance(a, b)
    }

    /// Surviving teleporter capacity at `node` given the configured
    /// per-node budget. Healthy fabrics keep the full budget; degraded
    /// wrappers model teleporter-pool capacity degradation here.
    fn teleporter_capacity(&self, node: usize, base: u32) -> u32 {
        let _ = node;
        base
    }

    /// Extra service nanoseconds a hop over `link` pays at `now_ns`
    /// (transient hot-spot windows, or a slower inter-module tier).
    ///
    /// The simulator consults this only when
    /// [`Topology::link_penalties`] returns `true` — a penalty model
    /// must come with that flag set, or it is (deliberately) never read
    /// on the hot path.
    fn hop_penalty_ns(&self, link: usize, now_ns: u64) -> u64 {
        let _ = (link, now_ns);
        0
    }

    /// Whether [`Topology::hop_penalty_ns`] can return non-zero for some
    /// link, i.e. whether the simulator must consult it on every hop.
    ///
    /// Defaults to [`Topology::fault_aware`], which preserves the
    /// historical contract (only fault wrappers charged penalties). A
    /// healthy composed fabric with a slow inter-module tier overrides
    /// this to `true` *without* claiming fault-awareness, so fault
    /// statistics stay off its reports.
    fn link_penalties(&self) -> bool {
        self.fault_aware()
    }

    /// Number of modules this fabric is composed of. Flat (single-chip)
    /// fabrics are one module; a hierarchical wrapper such as
    /// `qic-modular`'s `ModularFabric` reports its tile count so fault
    /// plans can address whole modules (`dead_modules`).
    fn modules(&self) -> usize {
        1
    }

    /// The module a node belongs to (`0 ≤ module < modules()`).
    fn module_of(&self, node: usize) -> usize {
        let _ = node;
        0
    }

    /// Mean hop distance over all ordered distinct node pairs
    /// (`O(nodes²)`; metadata, not a hot path).
    fn avg_distance(&self) -> f64 {
        let n = self.nodes();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0u64;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    total += u64::from(self.distance(a, b));
                }
            }
        }
        total as f64 / (n * (n - 1)) as f64
    }
}

/// Which fabric a [`crate::config::NetConfig`] describes.
///
/// The grid dimensions come from the config's `mesh_width`/`mesh_height`
/// fields; a hypercube additionally requires the node count to be a
/// power of two (its dimension is `log2(width × height)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Rectangular 2D mesh (the paper's fabric).
    Mesh,
    /// 2D mesh with wrap-around links in each dimension of extent ≥ 2.
    Torus,
    /// Binary hypercube; `width × height` must be a power of two.
    Hypercube,
}

impl TopologyKind {
    /// Every fabric kind, in sweep order.
    pub const ALL: [TopologyKind; 3] = [
        TopologyKind::Mesh,
        TopologyKind::Torus,
        TopologyKind::Hypercube,
    ];

    /// Builds the fabric for a `width × height` grid.
    ///
    /// # Errors
    ///
    /// Returns a message when the grid does not fit the fabric (empty
    /// grid; torus with fewer than two nodes; hypercube with a
    /// non-power-of-two node count).
    pub fn build(self, width: u16, height: u16) -> Result<Fabric, String> {
        let nodes = usize::from(width) * usize::from(height);
        if nodes == 0 {
            return Err("grid dimensions must be positive".into());
        }
        match self {
            TopologyKind::Mesh => Ok(Fabric::Mesh(Mesh::new(width, height))),
            TopologyKind::Torus => {
                if nodes < 2 {
                    return Err("a torus needs at least two nodes".into());
                }
                Ok(Fabric::Torus(Torus::new(width, height)))
            }
            TopologyKind::Hypercube => {
                if !nodes.is_power_of_two() {
                    return Err(format!(
                        "a hypercube needs a power-of-two node count, got {width}×{height}"
                    ));
                }
                let dim = nodes.trailing_zeros();
                if dim == 0 {
                    return Err("a hypercube needs at least two nodes".into());
                }
                let cube = Hypercube::new(dim);
                if (cube.width(), cube.height()) != (width, height) {
                    return Err(format!(
                        "a {nodes}-node hypercube uses a {}×{} grid, got {width}×{height}",
                        cube.width(),
                        cube.height()
                    ));
                }
                Ok(Fabric::Hypercube(cube))
            }
        }
    }

    /// Parses a campaign label (`"mesh"`, `"torus"`, `"hypercube"`).
    pub fn parse(label: &str) -> Option<TopologyKind> {
        match label {
            "mesh" => Some(TopologyKind::Mesh),
            "torus" => Some(TopologyKind::Torus),
            "hypercube" => Some(TopologyKind::Hypercube),
            _ => None,
        }
    }
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TopologyKind::Mesh => "mesh",
            TopologyKind::Torus => "torus",
            TopologyKind::Hypercube => "hypercube",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for TopologyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TopologyKind::parse(s).ok_or_else(|| format!("unknown topology {s:?}"))
    }
}

/// A configuration-selected fabric: enum dispatch over the three
/// concrete topologies.
///
/// [`crate::sim::NetworkSim`] is generic over any [`Topology`]; `Fabric`
/// is its default type parameter, so config-driven callers never name a
/// concrete fabric while custom topologies still get static dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fabric {
    /// A rectangular mesh.
    Mesh(Mesh),
    /// A wrap-around torus.
    Torus(Torus),
    /// A binary hypercube.
    Hypercube(Hypercube),
}

macro_rules! fabric_dispatch {
    ($self:ident, $t:ident => $e:expr) => {
        match $self {
            Fabric::Mesh($t) => $e,
            Fabric::Torus($t) => $e,
            Fabric::Hypercube($t) => $e,
        }
    };
}

impl Topology for Fabric {
    fn name(&self) -> &'static str {
        fabric_dispatch!(self, t => t.name())
    }

    fn width(&self) -> u16 {
        fabric_dispatch!(self, t => t.width())
    }

    fn height(&self) -> u16 {
        fabric_dispatch!(self, t => t.height())
    }

    fn ports_per_node(&self) -> usize {
        fabric_dispatch!(self, t => t.ports_per_node())
    }

    fn port_classes(&self) -> usize {
        fabric_dispatch!(self, t => t.port_classes())
    }

    fn port_class(&self, port: Port) -> usize {
        fabric_dispatch!(self, t => t.port_class(port))
    }

    fn neighbor(&self, node: usize, port: Port) -> Option<usize> {
        fabric_dispatch!(self, t => t.neighbor(node, port))
    }

    fn reverse_port(&self, node: usize, port: Port) -> Port {
        fabric_dispatch!(self, t => t.reverse_port(node, port))
    }

    fn links(&self) -> usize {
        fabric_dispatch!(self, t => t.links())
    }

    fn link_index(&self, node: usize, port: Port) -> usize {
        fabric_dispatch!(self, t => t.link_index(node, port))
    }

    fn distance(&self, a: usize, b: usize) -> u32 {
        fabric_dispatch!(self, t => t.distance(a, b))
    }

    fn min_ports(&self, node: usize, dst: usize) -> Vec<Port> {
        fabric_dispatch!(self, t => t.min_ports(node, dst))
    }

    fn min_port(&self, node: usize, dst: usize) -> Option<Port> {
        fabric_dispatch!(self, t => t.min_port(node, dst))
    }

    fn diameter(&self) -> u32 {
        fabric_dispatch!(self, t => t.diameter())
    }

    fn bisection_width(&self) -> usize {
        fabric_dispatch!(self, t => t.bisection_width())
    }

    fn dor_is_acyclic(&self) -> bool {
        fabric_dispatch!(self, t => t.dor_is_acyclic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions() {
        // The Port-based surface is the only enumeration: the four
        // compass directions are exactly the mesh's ports 0..4.
        let dirs: Vec<Dir> = (0..Mesh::new(2, 2).ports_per_node())
            .map(|p| Dir::from_port(Port(p as u8)).expect("mesh ports are compass directions"))
            .collect();
        assert_eq!(dirs, vec![Dir::East, Dir::West, Dir::North, Dir::South]);
        for d in dirs {
            assert_eq!(d.opposite().opposite(), d);
            assert_eq!(d.is_x(), d.opposite().is_x());
            assert_eq!(Dir::from_port(d.port()), Some(d));
            assert_eq!(Port::from(d), d.port());
            assert_eq!(d.port().index(), d.index());
        }
        assert_eq!(Dir::from_port(Port(4)), None);
    }

    #[test]
    fn manhattan() {
        assert_eq!(Coord::new(0, 0).manhattan(Coord::new(3, 4)), 7);
        assert_eq!(Coord::new(5, 5).manhattan(Coord::new(5, 5)), 0);
    }

    #[test]
    fn port_display_and_index() {
        assert_eq!(Port(3).to_string(), "p3");
        assert_eq!(Port(3).index(), 3);
        assert_eq!(Dir::South.to_string(), "S");
    }

    #[test]
    fn kind_builds_matching_fabrics() {
        let mesh = TopologyKind::Mesh.build(4, 3).unwrap();
        assert_eq!((mesh.name(), mesh.nodes()), ("mesh", 12));
        let torus = TopologyKind::Torus.build(4, 4).unwrap();
        assert_eq!((torus.name(), torus.links()), ("torus", 32));
        let cube = TopologyKind::Hypercube.build(4, 4).unwrap();
        assert_eq!((cube.name(), cube.diameter()), ("hypercube", 4));
    }

    #[test]
    fn kind_rejects_bad_grids() {
        assert!(TopologyKind::Mesh.build(0, 4).is_err());
        assert!(TopologyKind::Torus.build(1, 1).is_err());
        assert!(TopologyKind::Hypercube.build(3, 4).is_err());
        assert!(TopologyKind::Hypercube.build(1, 1).is_err());
        // 16 nodes laid out 2×8 is a valid power of two but not the
        // canonical hypercube grid (4×4).
        assert!(TopologyKind::Hypercube.build(2, 8).is_err());
    }

    #[test]
    fn kind_labels_round_trip() {
        for kind in TopologyKind::ALL {
            assert_eq!(TopologyKind::parse(&kind.to_string()), Some(kind));
            assert_eq!(kind.to_string().parse::<TopologyKind>(), Ok(kind));
        }
        assert!(TopologyKind::parse("ring").is_none());
        assert!("ring".parse::<TopologyKind>().is_err());
    }

    #[test]
    fn avg_distance_is_sane() {
        let mesh = Mesh::new(2, 2);
        // Pairs at distance 1 (8 ordered) and 2 (4 ordered): mean 4/3.
        assert!((mesh.avg_distance() - 4.0 / 3.0).abs() < 1e-12);
        let cube = Hypercube::new(2);
        assert!((cube.avg_distance() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(Mesh::new(1, 1).avg_distance(), 0.0);
    }

    #[test]
    fn coord_round_trip_via_trait() {
        let t = Torus::new(5, 3);
        for node in 0..t.nodes() {
            let c = t.coord_of(node);
            assert!(t.contains(c));
            assert_eq!(Topology::node_index(&t, c), node);
        }
        assert!(!t.contains(Coord::new(5, 0)));
    }
}
